//! Fold the [`ProtoEvent`] stream into per-rank / per-proxy counters.
//!
//! The paper's headline claims — perfect compute/communication overlap
//! with zero CPU intervention (Figs. 12/14), registration-cache
//! amortization (§VII-B, Fig. 5), once-only group-metadata exchange
//! (§VII-D) — are *counters*, not timings. [`Metrics`] is an
//! [`EventSink`] that accumulates exactly those counters during a run;
//! [`Metrics::report`] freezes them into a [`MetricsReport`] once every
//! rank has passed `Finalize_Offload`, and
//! [`MetricsReport::to_json`] renders the stable machine-readable form
//! benchmarks drop into `bench_results/` (schema
//! `bluefield-offload/metrics/v1`, validated by `cargo xtask
//! validate-metrics`).
//!
//! The aggregation is deterministic: every container is a `BTreeMap`, so
//! two same-seed runs serialize to byte-identical JSON (asserted in
//! `tests/determinism.rs`).

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{EventSink, Pid, SimTime};

use crate::events::{CacheOutcome, CacheSide, FinKind, HostCacheKind, PathKind, ProtoEvent};

/// Hit/miss/stale/eviction totals of one registration cache.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found an invalid entry (evicted on the spot).
    pub stale: u64,
    /// Entries displaced by capacity or staleness.
    pub evictions: u64,
}

impl CacheCounters {
    /// Total lookups: `hits + misses + stale` (the conservation law the
    /// property tests assert).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.stale
    }

    /// Fraction of lookups served from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let l = self.lookups();
        if l == 0 {
            0.0
        } else {
            self.hits as f64 / l as f64
        }
    }
}

/// Counters attributed to one host rank.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct RankMetrics {
    /// The rank.
    pub rank: usize,
    /// Control messages this host's CPU processed.
    pub wakeups: u64,
    /// Wakeups that found offloaded work still outstanding.
    pub interventions: u64,
    /// `FinSend` notices addressed to this rank.
    pub fin_send: u64,
    /// `FinRecv` notices addressed to this rank.
    pub fin_recv: u64,
    /// `GroupFin` notices addressed to this rank.
    pub fin_group: u64,
    /// The rank completed `Finalize_Offload`.
    pub finalized: bool,
}

/// Host activity inside one overlap window — the interval between
/// `Group_Offload_call` returning and `Group_Wait` observing completion
/// for one generation. The paper claims zero interventions here.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WindowMetrics {
    /// Rank owning the group request.
    pub rank: usize,
    /// Group request id on that rank.
    pub req_id: usize,
    /// Generation (1-based; `gen >= 2` means every cache is warm).
    pub gen: u64,
    /// Host wakeups that landed inside the window.
    pub wakeups: u64,
    /// Wakeups inside the window with work still outstanding.
    pub interventions: u64,
    /// `Group_Wait` closed the window.
    pub closed: bool,
}

/// Counters folded per tenant (DESIGN.md §18). Populated only when a
/// multi-tenant rank→tenant map is installed via
/// [`Metrics::set_tenant_map`]; single-tenant reports carry no tenant
/// rows so their JSON stays byte-identical to pre-tenant baselines.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct TenantMetrics {
    /// The tenant id.
    pub tenant: usize,
    /// Ranks mapped to this tenant.
    pub ranks: u64,
    /// Host CPU wakeups across the tenant's ranks.
    pub wakeups: u64,
    /// Wakeups with offloaded work still outstanding.
    pub interventions: u64,
    /// `FinSend` notices addressed to the tenant's ranks.
    pub fin_send: u64,
    /// `FinRecv` notices addressed to the tenant's ranks.
    pub fin_recv: u64,
    /// `GroupFin` notices addressed to the tenant's ranks.
    pub fin_group: u64,
    /// Posts the tenant's ranks deferred into the credit queue.
    pub credit_deferrals: u64,
    /// Posts shed at admission because the tenant was over its hard
    /// quota.
    pub quota_sheds: u64,
    /// Deferred posts the DRR scheduler admitted for this tenant.
    pub drr_grants: u64,
}

/// Circuit-breaker and retry-budget totals (DESIGN.md §19). All zero —
/// and absent from the JSON — unless [`crate::HealthConfig`] is armed
/// and the fabric actually degrades, so clean-run reports stay
/// byte-identical to pre-health baselines.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct HealthMetrics {
    /// Breakers that tripped closed → open.
    pub breaker_trips: u64,
    /// Open breakers that entered the half-open probing state.
    pub breaker_half_opens: u64,
    /// Half-open breakers that closed after a successful probe.
    pub breaker_closes: u64,
    /// Probe transfers admitted through half-open breakers.
    pub breaker_probes: u64,
    /// Posts rerouted around an open breaker (cross-GVMI → staging,
    /// staging → host-direct) without a per-message failure round-trip.
    pub breaker_fastpaths: u64,
    /// Transfers shed by a per-peer retry budget (ctrl or data plane).
    pub retry_budget_sheds: u64,
}

impl HealthMetrics {
    /// True when the health engine acted at all this run.
    pub fn any(&self) -> bool {
        *self != HealthMetrics::default()
    }

    /// The `health` section as ordered key/value pairs — the exact keys
    /// and order of the optional `bluefield-offload/metrics/v1`
    /// `health` object (`obs::schema::HEALTH_KEYS`).
    pub fn kv(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("breaker_trips", self.breaker_trips),
            ("breaker_half_opens", self.breaker_half_opens),
            ("breaker_closes", self.breaker_closes),
            ("breaker_probes", self.breaker_probes),
            ("breaker_fastpaths", self.breaker_fastpaths),
            ("retry_budget_sheds", self.retry_budget_sheds),
        ]
    }
}

/// Counters attributed to one DPU proxy process.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct ProxyMetrics {
    /// Scheduler pid of the proxy process.
    pub pid: usize,
    /// RTS control messages accepted.
    pub rts: u64,
    /// RTR control messages accepted.
    pub rtr: u64,
    /// RTS/RTR pairs matched.
    pub pairs_matched: u64,
    /// RDMA work requests posted (writes and reads).
    pub writes_posted: u64,
    /// Completions observed for those work requests.
    pub writes_completed: u64,
    /// Payload bytes moved host-to-host through cross-GVMI.
    pub bytes_cross_gvmi: u64,
    /// Payload bytes pulled into staging buffers (hop 1).
    pub bytes_staging_hop1: u64,
    /// Payload bytes forwarded out of staging buffers (hop 2).
    pub bytes_staging_hop2: u64,
    /// High-water mark of the pending-send (RTS) queues.
    pub send_q_hwm: u64,
    /// High-water mark of the pending-receive (RTR) queues.
    pub recv_q_hwm: u64,
    /// Barrier entries that blocked at least once.
    pub barrier_stalls: u64,
    /// Malformed control messages dropped by `decode_ctrl`.
    pub ctrl_dropped: u64,
}

#[derive(Default)]
struct Inner {
    events: u64,
    fin_send: u64,
    fin_recv: u64,
    fin_group: u64,
    cross_regs: u64,
    ctrl_dropped_host: u64,
    group_execs: u64,
    ctrl_retransmits: u64,
    ctrl_dups_dropped: u64,
    ctrl_abandoned: u64,
    fallback_staging: u64,
    proxy_restarts: u64,
    reqs_replayed: u64,
    req_failures: u64,
    stale_cqes: u64,
    payload_corrupt: u64,
    payload_recovered: u64,
    data_integrity_failures: u64,
    queue_full_nacks: u64,
    credit_deferrals: u64,
    quota_sheds: u64,
    drr_grants: u64,
    staging_reclaimed: u64,
    reqs_cancelled: u64,
    reqs_reaped: u64,
    group_failures: u64,
    journal_truncations: u64,
    journal_hwm: u64,
    health: HealthMetrics,
    host_gvmi: CacheCounters,
    host_ib: CacheCounters,
    dpu_cross: CacheCounters,
    ranks: BTreeMap<usize, RankMetrics>,
    proxies: BTreeMap<usize, ProxyMetrics>,
    /// `(rank, req_id, gen)` → window; insertion keyed so report order is
    /// stable.
    windows: BTreeMap<(usize, usize, u64), WindowMetrics>,
    /// Open windows per rank: `(req_id, gen)` pairs awaiting
    /// `GroupWaitDone`.
    open_windows: BTreeMap<usize, Vec<(usize, u64)>>,
    /// `RecvMeta` shipments per `(from_rank, to_rank, req_id)`.
    recv_meta: BTreeMap<(usize, usize, usize), u64>,
    /// Full `GroupPacket` shipments per `(host_rank, req_id)`.
    group_packets: BTreeMap<(usize, usize), u64>,
    /// rank → tenant, installed by [`Metrics::set_tenant_map`]. Empty
    /// (the default) means single-tenant: no `tenants` section.
    tenant_map: BTreeMap<usize, usize>,
    /// Credit deferrals per deferring rank (folded by tenant in
    /// [`Metrics::report`]).
    deferrals_by_rank: BTreeMap<usize, u64>,
    /// Hard-quota sheds per tenant.
    tenant_quota_sheds: BTreeMap<usize, u64>,
    /// DRR grants per tenant.
    tenant_drr_grants: BTreeMap<usize, u64>,
}

impl Inner {
    fn rank(&mut self, r: usize) -> &mut RankMetrics {
        let m = self.ranks.entry(r).or_default();
        m.rank = r;
        m
    }

    fn proxy(&mut self, pid: Pid) -> &mut ProxyMetrics {
        let m = self.proxies.entry(pid.index()).or_default();
        m.pid = pid.index();
        m
    }

    fn on_event(&mut self, _at: SimTime, pid: Pid, ev: &ProtoEvent) {
        self.events += 1;
        match *ev {
            ProtoEvent::RtsAtProxy { .. } => self.proxy(pid).rts += 1,
            ProtoEvent::RtrAtProxy { .. } => self.proxy(pid).rtr += 1,
            ProtoEvent::PairMatched { .. } => self.proxy(pid).pairs_matched += 1,
            ProtoEvent::WritePosted { bytes, path, .. } => {
                let p = self.proxy(pid);
                p.writes_posted += 1;
                match path {
                    PathKind::CrossGvmi => p.bytes_cross_gvmi += bytes,
                    PathKind::StagingHop1 => p.bytes_staging_hop1 += bytes,
                    PathKind::StagingHop2 => p.bytes_staging_hop2 += bytes,
                }
            }
            ProtoEvent::WriteCompleted { .. } => self.proxy(pid).writes_completed += 1,
            ProtoEvent::FinSent { rank, kind, .. } => {
                match kind {
                    FinKind::Send => self.fin_send += 1,
                    FinKind::Recv => self.fin_recv += 1,
                    FinKind::Group => self.fin_group += 1,
                }
                let m = self.rank(rank);
                match kind {
                    FinKind::Send => m.fin_send += 1,
                    FinKind::Recv => m.fin_recv += 1,
                    FinKind::Group => m.fin_group += 1,
                }
            }
            ProtoEvent::CrossReg { .. } => self.cross_regs += 1,
            ProtoEvent::CrossRegCacheLookup { outcome, .. } => match outcome {
                CacheOutcome::Hit => self.dpu_cross.hits += 1,
                CacheOutcome::Miss => self.dpu_cross.misses += 1,
                CacheOutcome::Stale => self.dpu_cross.stale += 1,
            },
            ProtoEvent::Mkey2Used { .. } => {}
            ProtoEvent::RecvMetaSent {
                from_rank,
                to_rank,
                req_id,
            } => {
                *self
                    .recv_meta
                    .entry((from_rank, to_rank, req_id))
                    .or_insert(0) += 1
            }
            ProtoEvent::GroupPacketSent { host_rank, req_id } => {
                *self.group_packets.entry((host_rank, req_id)).or_insert(0) += 1
            }
            ProtoEvent::BarrierCntr { .. } => {}
            ProtoEvent::HostCacheLookup { cache, outcome, .. } => {
                let c = match cache {
                    HostCacheKind::Gvmi => &mut self.host_gvmi,
                    HostCacheKind::Ib => &mut self.host_ib,
                };
                match outcome {
                    CacheOutcome::Hit => c.hits += 1,
                    CacheOutcome::Miss => c.misses += 1,
                    CacheOutcome::Stale => c.stale += 1,
                }
            }
            ProtoEvent::CacheEvicted { side, .. } => match side {
                CacheSide::HostGvmi => self.host_gvmi.evictions += 1,
                CacheSide::HostIb => self.host_ib.evictions += 1,
                CacheSide::DpuCross => self.dpu_cross.evictions += 1,
            },
            ProtoEvent::CtrlDropped { at_proxy, .. } => {
                if at_proxy {
                    self.proxy(pid).ctrl_dropped += 1;
                } else {
                    self.ctrl_dropped_host += 1;
                }
            }
            ProtoEvent::CtrlRetransmit { .. } => self.ctrl_retransmits += 1,
            ProtoEvent::CtrlDuplicateDropped { .. } => self.ctrl_dups_dropped += 1,
            ProtoEvent::CtrlAbandoned { .. } => self.ctrl_abandoned += 1,
            ProtoEvent::FallbackToStaging { .. } => self.fallback_staging += 1,
            ProtoEvent::ProxyRestarted { .. } => self.proxy_restarts += 1,
            ProtoEvent::ReqReplayed { .. } => self.reqs_replayed += 1,
            ProtoEvent::ReqFailed { .. } => self.req_failures += 1,
            ProtoEvent::StaleCqe { .. } => self.stale_cqes += 1,
            ProtoEvent::HostWakeup { rank, intervention } => {
                let m = self.rank(rank);
                m.wakeups += 1;
                if intervention {
                    m.interventions += 1;
                }
                if let Some(open) = self.open_windows.get(&rank) {
                    for &(req_id, gen) in open {
                        if let Some(w) = self.windows.get_mut(&(rank, req_id, gen)) {
                            w.wakeups += 1;
                            if intervention {
                                w.interventions += 1;
                            }
                        }
                    }
                }
            }
            ProtoEvent::GroupCallReturned {
                host_rank,
                req_id,
                gen,
            } => {
                self.windows.insert(
                    (host_rank, req_id, gen),
                    WindowMetrics {
                        rank: host_rank,
                        req_id,
                        gen,
                        wakeups: 0,
                        interventions: 0,
                        closed: false,
                    },
                );
                self.open_windows
                    .entry(host_rank)
                    .or_default()
                    .push((req_id, gen));
            }
            ProtoEvent::GroupWaitDone {
                host_rank,
                req_id,
                gen,
            } => {
                if let Some(w) = self.windows.get_mut(&(host_rank, req_id, gen)) {
                    w.closed = true;
                }
                if let Some(open) = self.open_windows.get_mut(&host_rank) {
                    open.retain(|&(r, g)| !(r == req_id && g == gen));
                }
            }
            ProtoEvent::GroupExecSent { .. } => self.group_execs += 1,
            ProtoEvent::BarrierStall { .. } => self.proxy(pid).barrier_stalls += 1,
            ProtoEvent::ProxyQueueDepth {
                send_depth,
                recv_depth,
            } => {
                let p = self.proxy(pid);
                p.send_q_hwm = p.send_q_hwm.max(send_depth as u64);
                p.recv_q_hwm = p.recv_q_hwm.max(recv_depth as u64);
            }
            ProtoEvent::HostFinalized { rank } => self.rank(rank).finalized = true,
            // Causal-timeline endpoints: counted in `events`, analyzed by
            // `obs::lifecycle` rather than aggregated here (HostWakeup
            // already carries the intervention signal these refine).
            ProtoEvent::HostReqPosted { .. } | ProtoEvent::HostReqDone { .. } => {}
            ProtoEvent::PayloadCorrupt { .. } => self.payload_corrupt += 1,
            ProtoEvent::PayloadRecovered { .. } => self.payload_recovered += 1,
            ProtoEvent::DataIntegrityFailed { .. } => self.data_integrity_failures += 1,
            ProtoEvent::QueueFullNack { .. } => self.queue_full_nacks += 1,
            ProtoEvent::CreditDeferred { rank, .. } => {
                self.credit_deferrals += 1;
                *self.deferrals_by_rank.entry(rank).or_insert(0) += 1;
            }
            ProtoEvent::QuotaShed { tenant, .. } => {
                self.quota_sheds += 1;
                *self.tenant_quota_sheds.entry(tenant).or_insert(0) += 1;
            }
            ProtoEvent::DrrGrant { tenant, .. } => {
                self.drr_grants += 1;
                *self.tenant_drr_grants.entry(tenant).or_insert(0) += 1;
            }
            ProtoEvent::StagingReclaimed { .. } => self.staging_reclaimed += 1,
            ProtoEvent::ReqCancelled { .. } => self.reqs_cancelled += 1,
            ProtoEvent::ReqReaped { .. } => self.reqs_reaped += 1,
            ProtoEvent::GroupFailed { .. } => self.group_failures += 1,
            ProtoEvent::JournalTruncated { .. } => self.journal_truncations += 1,
            ProtoEvent::JournalSize { len } => self.journal_hwm = self.journal_hwm.max(len),
            ProtoEvent::BreakerTripped { .. } => self.health.breaker_trips += 1,
            ProtoEvent::BreakerHalfOpen { .. } => self.health.breaker_half_opens += 1,
            ProtoEvent::BreakerClosed { .. } => self.health.breaker_closes += 1,
            ProtoEvent::BreakerProbe { .. } => self.health.breaker_probes += 1,
            ProtoEvent::BreakerFastPath { .. } => self.health.breaker_fastpaths += 1,
            ProtoEvent::RetryBudgetExhausted { .. } => self.health.retry_budget_sheds += 1,
        }
    }
}

/// An [`EventSink`] that aggregates the protocol-event stream into a
/// [`MetricsReport`]. Install with
/// `ClusterBuilder::with_event_sink(metrics.sink())` (or via
/// `workloads::with_observer`); read the report after the simulation —
/// i.e. at or after `Finalize_Offload` — with [`Metrics::report`].
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<Inner>>,
}

impl Metrics {
    /// Fresh, all-zero collector.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The sink to install on a simulation. Non-`ProtoEvent` emissions
    /// are ignored.
    pub fn sink(&self) -> EventSink {
        let inner = Arc::clone(&self.inner);
        Arc::new(move |at: SimTime, pid: Pid, ev: &dyn Any| {
            if let Some(ev) = ev.downcast_ref::<ProtoEvent>() {
                inner.lock().on_event(at, pid, ev);
            }
        })
    }

    /// Install the rank→tenant map used to fold per-tenant counters.
    /// With fewer than two distinct tenants the map is ignored and the
    /// report stays tenant-free (the single-tenant default).
    pub fn set_tenant_map(&self, map: BTreeMap<usize, usize>) {
        let distinct: std::collections::BTreeSet<usize> = map.values().copied().collect();
        self.inner.lock().tenant_map = if distinct.len() >= 2 {
            map
        } else {
            BTreeMap::new()
        };
    }

    /// Snapshot the accumulated counters. Meaningful once every rank has
    /// reached `Finalize_Offload` (check
    /// [`MetricsReport::finalized_ranks`]); safe to call at any point for
    /// a running tally.
    pub fn report(&self) -> MetricsReport {
        let inner = self.inner.lock();
        let proxies: Vec<ProxyMetrics> = inner.proxies.values().cloned().collect();
        let sum = |f: fn(&ProxyMetrics) -> u64| proxies.iter().map(f).sum::<u64>();
        let recv_meta: Vec<(usize, usize, usize, u64)> = inner
            .recv_meta
            .iter()
            .map(|(&(f, t, r), &n)| (f, t, r, n))
            .collect();
        let mut tenants: BTreeMap<usize, TenantMetrics> = BTreeMap::new();
        if !inner.tenant_map.is_empty() {
            for (&rank, &tenant) in &inner.tenant_map {
                let t = tenants.entry(tenant).or_default();
                t.tenant = tenant;
                t.ranks += 1;
                if let Some(r) = inner.ranks.get(&rank) {
                    t.wakeups += r.wakeups;
                    t.interventions += r.interventions;
                    t.fin_send += r.fin_send;
                    t.fin_recv += r.fin_recv;
                    t.fin_group += r.fin_group;
                }
                t.credit_deferrals += inner.deferrals_by_rank.get(&rank).copied().unwrap_or(0);
            }
            for (&tenant, &n) in &inner.tenant_quota_sheds {
                let t = tenants.entry(tenant).or_default();
                t.tenant = tenant;
                t.quota_sheds += n;
            }
            for (&tenant, &n) in &inner.tenant_drr_grants {
                let t = tenants.entry(tenant).or_default();
                t.tenant = tenant;
                t.drr_grants += n;
            }
        }
        MetricsReport {
            events: inner.events,
            rts: sum(|p| p.rts),
            rtr: sum(|p| p.rtr),
            pairs_matched: sum(|p| p.pairs_matched),
            fin_send: inner.fin_send,
            fin_recv: inner.fin_recv,
            fin_group: inner.fin_group,
            writes_posted: sum(|p| p.writes_posted),
            writes_completed: sum(|p| p.writes_completed),
            bytes_cross_gvmi: sum(|p| p.bytes_cross_gvmi),
            bytes_staging_hop1: sum(|p| p.bytes_staging_hop1),
            bytes_staging_hop2: sum(|p| p.bytes_staging_hop2),
            cross_regs: inner.cross_regs,
            ctrl_dropped_host: inner.ctrl_dropped_host,
            ctrl_dropped_proxy: sum(|p| p.ctrl_dropped),
            host_wakeups: inner.ranks.values().map(|r| r.wakeups).sum(),
            host_interventions: inner.ranks.values().map(|r| r.interventions).sum(),
            barrier_stalls: sum(|p| p.barrier_stalls),
            send_q_hwm: proxies.iter().map(|p| p.send_q_hwm).max().unwrap_or(0),
            recv_q_hwm: proxies.iter().map(|p| p.recv_q_hwm).max().unwrap_or(0),
            host_gvmi_cache: inner.host_gvmi,
            host_ib_cache: inner.host_ib,
            dpu_cross_cache: inner.dpu_cross,
            recv_meta_total: recv_meta.iter().map(|&(_, _, _, n)| n).sum(),
            recv_meta_max_per_pair: recv_meta.iter().map(|&(_, _, _, n)| n).max().unwrap_or(0),
            recv_meta,
            group_packets_total: inner.group_packets.values().sum(),
            group_packets_max_per_req: inner.group_packets.values().copied().max().unwrap_or(0),
            group_execs: inner.group_execs,
            ctrl_retransmits: inner.ctrl_retransmits,
            ctrl_dups_dropped: inner.ctrl_dups_dropped,
            ctrl_abandoned: inner.ctrl_abandoned,
            fallback_staging: inner.fallback_staging,
            proxy_restarts: inner.proxy_restarts,
            reqs_replayed: inner.reqs_replayed,
            req_failures: inner.req_failures,
            stale_cqes: inner.stale_cqes,
            payload_corrupt: inner.payload_corrupt,
            payload_recovered: inner.payload_recovered,
            data_integrity_failures: inner.data_integrity_failures,
            queue_full_nacks: inner.queue_full_nacks,
            credit_deferrals: inner.credit_deferrals,
            quota_sheds: inner.quota_sheds,
            drr_grants: inner.drr_grants,
            staging_reclaimed: inner.staging_reclaimed,
            reqs_cancelled: inner.reqs_cancelled,
            reqs_reaped: inner.reqs_reaped,
            group_failures: inner.group_failures,
            journal_truncations: inner.journal_truncations,
            journal_hwm: inner.journal_hwm,
            health: inner.health,
            finalized_ranks: inner.ranks.values().filter(|r| r.finalized).count() as u64,
            ranks: inner.ranks.values().cloned().collect(),
            windows: inner.windows.values().cloned().collect(),
            tenants: tenants.into_values().collect(),
            proxies,
        }
    }
}

/// Frozen counters of one run. Field-by-field this is the
/// `bluefield-offload/metrics/v1` JSON schema (see
/// [`to_json`](MetricsReport::to_json) and DESIGN.md §11).
#[derive(Clone, Debug, Default)]
pub struct MetricsReport {
    /// Total protocol events observed.
    pub events: u64,
    /// RTS control messages accepted at proxies.
    pub rts: u64,
    /// RTR control messages accepted at proxies.
    pub rtr: u64,
    /// RTS/RTR pairs matched.
    pub pairs_matched: u64,
    /// `FinSend` notices sent.
    pub fin_send: u64,
    /// `FinRecv` notices sent.
    pub fin_recv: u64,
    /// `GroupFin` notices sent.
    pub fin_group: u64,
    /// RDMA work requests posted by proxies.
    pub writes_posted: u64,
    /// Completions observed by proxies.
    pub writes_completed: u64,
    /// Payload bytes moved directly host-to-host (cross-GVMI).
    pub bytes_cross_gvmi: u64,
    /// Payload bytes pulled into DPU staging (hop 1).
    pub bytes_staging_hop1: u64,
    /// Payload bytes forwarded from DPU staging (hop 2).
    pub bytes_staging_hop2: u64,
    /// Cross-registrations actually performed (cache misses).
    pub cross_regs: u64,
    /// Malformed control messages dropped on hosts.
    pub ctrl_dropped_host: u64,
    /// Malformed control messages dropped on proxies.
    pub ctrl_dropped_proxy: u64,
    /// Host CPU wakeups across all ranks.
    pub host_wakeups: u64,
    /// Wakeups with offloaded work still outstanding.
    pub host_interventions: u64,
    /// Barrier entries that blocked at least once, across proxies.
    pub barrier_stalls: u64,
    /// Max pending-send queue depth across proxies.
    pub send_q_hwm: u64,
    /// Max pending-receive queue depth across proxies.
    pub recv_q_hwm: u64,
    /// Host-side GVMI registration cache counters.
    pub host_gvmi_cache: CacheCounters,
    /// Host-side IB registration cache counters.
    pub host_ib_cache: CacheCounters,
    /// DPU-side cross-registration cache counters.
    pub dpu_cross_cache: CacheCounters,
    /// Total `RecvMeta` shipments.
    pub recv_meta_total: u64,
    /// Max shipments for any single `(from, to, req_id)` triple — the
    /// §VII-D once-only claim is `<= 1`.
    pub recv_meta_max_per_pair: u64,
    /// Per-triple `RecvMeta` shipment counts `(from, to, req_id, n)`.
    pub recv_meta: Vec<(usize, usize, usize, u64)>,
    /// Total full `GroupPacket` shipments.
    pub group_packets_total: u64,
    /// Max shipments for any single `(host_rank, req_id)` — with the
    /// group cache on this is `<= 1`.
    pub group_packets_max_per_req: u64,
    /// Warm-path `GroupExec` doorbells.
    pub group_execs: u64,
    /// Control messages retransmitted by the reliable link after an
    /// ack timeout. Zero on a fault-free run.
    pub ctrl_retransmits: u64,
    /// Duplicate control messages discarded by receiver dedup windows.
    pub ctrl_dups_dropped: u64,
    /// Control messages abandoned after exhausting retransmit attempts.
    pub ctrl_abandoned: u64,
    /// Messages that fell back to the staging path because cross-GVMI
    /// registration failed.
    pub fallback_staging: u64,
    /// Proxy crash/restart cycles observed.
    pub proxy_restarts: u64,
    /// In-flight host requests replayed after a proxy restart.
    pub reqs_replayed: u64,
    /// Host requests surfaced to the app as a typed `OffloadError`.
    pub req_failures: u64,
    /// Completions for write-ids no longer in flight (pre-restart CQEs).
    pub stale_cqes: u64,
    /// Landed payloads that failed CRC verification (payload-fault plans).
    pub payload_corrupt: u64,
    /// Previously corrupt transfers that verified clean after data-path
    /// retransmission.
    pub payload_recovered: u64,
    /// Transfers that exhausted the data-path retransmission budget and
    /// surfaced `OffloadError::DataIntegrity`.
    pub data_integrity_failures: u64,
    /// Descriptors refused admission by a proxy at its queue cap.
    pub queue_full_nacks: u64,
    /// Posts the host deferred because its per-proxy credit window was
    /// exhausted.
    pub credit_deferrals: u64,
    /// Posts shed at admission because the posting tenant was over its
    /// hard quota (multi-tenant runs only; zero otherwise).
    pub quota_sheds: u64,
    /// Deferred posts admitted by the deficit-round-robin scheduler
    /// (multi-tenant runs only; zero otherwise).
    pub drr_grants: u64,
    /// Staging buffers recycled from the bounded free pool.
    pub staging_reclaimed: u64,
    /// Requests cancelled by their host (deadline expiry or explicit).
    pub reqs_cancelled: u64,
    /// Cancelled-transfer descriptors reaped or suppressed at proxies.
    pub reqs_reaped: u64,
    /// Group generations that failed with a typed error.
    pub group_failures: u64,
    /// FIN-journal truncation passes that dropped entries.
    pub journal_truncations: u64,
    /// High-water mark of any proxy's FIN journal (0 unless the journal
    /// cap is armed — the size is only sampled then).
    pub journal_hwm: u64,
    /// Circuit-breaker / retry-budget totals. Deliberately *not* part of
    /// [`totals`](MetricsReport::totals): the telemetry bus publishes
    /// `totals()` deltas, and health counters ride the optional `health`
    /// JSON object instead (absent when all zero).
    pub health: HealthMetrics,
    /// Ranks that completed `Finalize_Offload`.
    pub finalized_ranks: u64,
    /// Per-rank counters, ordered by rank.
    pub ranks: Vec<RankMetrics>,
    /// Per-overlap-window counters, ordered by `(rank, req_id, gen)`.
    pub windows: Vec<WindowMetrics>,
    /// Per-tenant counters, ordered by tenant. Empty unless a
    /// multi-tenant rank→tenant map was installed
    /// ([`Metrics::set_tenant_map`]).
    pub tenants: Vec<TenantMetrics>,
    /// Per-proxy counters, ordered by pid.
    pub proxies: Vec<ProxyMetrics>,
}

impl MetricsReport {
    /// Host interventions inside *closed* overlap windows (any
    /// generation). The paper's zero-CPU-intervention claim.
    pub fn window_interventions(&self) -> u64 {
        self.windows
            .iter()
            .filter(|w| w.closed)
            .map(|w| w.interventions)
            .sum()
    }

    /// Host interventions inside closed *warm* windows (`gen >= 2`,
    /// i.e. metadata and caches already in place).
    pub fn warm_window_interventions(&self) -> u64 {
        self.windows
            .iter()
            .filter(|w| w.closed && w.gen >= 2)
            .map(|w| w.interventions)
            .sum()
    }

    /// Bytes that reached a destination host (cross-GVMI writes plus
    /// staging forwards); equals the sum of matched transfer sizes.
    pub fn delivered_bytes(&self) -> u64 {
        self.bytes_cross_gvmi + self.bytes_staging_hop2
    }

    /// The `totals` section as ordered key/value pairs — the exact keys
    /// and order of the `bluefield-offload/metrics/v1` `totals` object.
    /// The telemetry bus diffs successive calls of this to form
    /// snapshot deltas, so the key order here *is* the delta order.
    pub fn totals(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("events", self.events),
            ("rts", self.rts),
            ("rtr", self.rtr),
            ("pairs_matched", self.pairs_matched),
            ("fin_send", self.fin_send),
            ("fin_recv", self.fin_recv),
            ("fin_group", self.fin_group),
            ("writes_posted", self.writes_posted),
            ("writes_completed", self.writes_completed),
            ("bytes_cross_gvmi", self.bytes_cross_gvmi),
            ("bytes_staging_hop1", self.bytes_staging_hop1),
            ("bytes_staging_hop2", self.bytes_staging_hop2),
            ("cross_regs", self.cross_regs),
            ("ctrl_dropped_host", self.ctrl_dropped_host),
            ("ctrl_dropped_proxy", self.ctrl_dropped_proxy),
            ("host_wakeups", self.host_wakeups),
            ("host_interventions", self.host_interventions),
            ("window_interventions", self.window_interventions()),
            (
                "warm_window_interventions",
                self.warm_window_interventions(),
            ),
            ("barrier_stalls", self.barrier_stalls),
            ("send_q_hwm", self.send_q_hwm),
            ("recv_q_hwm", self.recv_q_hwm),
            ("recv_meta_total", self.recv_meta_total),
            ("recv_meta_max_per_pair", self.recv_meta_max_per_pair),
            ("group_packets_total", self.group_packets_total),
            ("group_packets_max_per_req", self.group_packets_max_per_req),
            ("group_execs", self.group_execs),
            ("ctrl_retransmits", self.ctrl_retransmits),
            ("ctrl_dups_dropped", self.ctrl_dups_dropped),
            ("ctrl_abandoned", self.ctrl_abandoned),
            ("fallback_staging", self.fallback_staging),
            ("proxy_restarts", self.proxy_restarts),
            ("reqs_replayed", self.reqs_replayed),
            ("req_failures", self.req_failures),
            ("stale_cqes", self.stale_cqes),
            ("payload_corrupt", self.payload_corrupt),
            ("payload_recovered", self.payload_recovered),
            ("data_integrity_failures", self.data_integrity_failures),
            ("queue_full_nacks", self.queue_full_nacks),
            ("credit_deferrals", self.credit_deferrals),
            ("quota_sheds", self.quota_sheds),
            ("drr_grants", self.drr_grants),
            ("staging_reclaimed", self.staging_reclaimed),
            ("reqs_cancelled", self.reqs_cancelled),
            ("reqs_reaped", self.reqs_reaped),
            ("group_failures", self.group_failures),
            ("journal_truncations", self.journal_truncations),
            ("journal_hwm", self.journal_hwm),
            ("finalized_ranks", self.finalized_ranks),
        ]
    }

    /// Render as deterministic `bluefield-offload/metrics/v1` JSON.
    /// `bench` names the producing benchmark or test.
    pub fn to_json(&self, bench: &str) -> String {
        let mut o = String::with_capacity(4096);
        let esc: String = bench
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || "_-. ".contains(*c))
            .collect();
        o.push_str("{\n  \"schema\": \"bluefield-offload/metrics/v1\",\n");
        let _ = writeln!(o, "  \"bench\": \"{esc}\",");
        o.push_str("  \"totals\": {");
        let totals = self.totals();
        for (i, (k, v)) in totals.iter().enumerate() {
            let sep = if i + 1 == totals.len() { "" } else { "," };
            let _ = write!(o, "\n    \"{k}\": {v}{sep}");
        }
        o.push_str("\n  },\n  \"caches\": {\n");
        let caches = [
            ("host_gvmi", &self.host_gvmi_cache),
            ("host_ib", &self.host_ib_cache),
            ("dpu_cross", &self.dpu_cross_cache),
        ];
        for (i, (k, c)) in caches.iter().enumerate() {
            let sep = if i + 1 == caches.len() { "" } else { "," };
            let _ = writeln!(
                o,
                "    \"{k}\": {{\"hits\": {}, \"misses\": {}, \"stale\": {}, \"evictions\": {}}}{sep}",
                c.hits, c.misses, c.stale, c.evictions
            );
        }
        o.push_str("  },\n  \"ranks\": [");
        for (i, r) in self.ranks.iter().enumerate() {
            let sep = if i + 1 == self.ranks.len() { "" } else { "," };
            let _ = write!(
                o,
                "\n    {{\"rank\": {}, \"wakeups\": {}, \"interventions\": {}, \"fin_send\": {}, \"fin_recv\": {}, \"fin_group\": {}, \"finalized\": {}}}{sep}",
                r.rank, r.wakeups, r.interventions, r.fin_send, r.fin_recv, r.fin_group, r.finalized
            );
        }
        o.push_str("\n  ],\n  \"windows\": [");
        for (i, w) in self.windows.iter().enumerate() {
            let sep = if i + 1 == self.windows.len() { "" } else { "," };
            let _ = write!(
                o,
                "\n    {{\"rank\": {}, \"req_id\": {}, \"gen\": {}, \"wakeups\": {}, \"interventions\": {}, \"closed\": {}}}{sep}",
                w.rank, w.req_id, w.gen, w.wakeups, w.interventions, w.closed
            );
        }
        if !self.tenants.is_empty() {
            // Optional section: only multi-tenant runs carry it, so
            // single-tenant JSON stays byte-identical to old baselines.
            o.push_str("\n  ],\n  \"tenants\": [");
            for (i, t) in self.tenants.iter().enumerate() {
                let sep = if i + 1 == self.tenants.len() { "" } else { "," };
                let _ = write!(
                    o,
                    "\n    {{\"tenant\": {}, \"ranks\": {}, \"wakeups\": {}, \"interventions\": {}, \"fin_send\": {}, \"fin_recv\": {}, \"fin_group\": {}, \"credit_deferrals\": {}, \"quota_sheds\": {}, \"drr_grants\": {}}}{sep}",
                    t.tenant,
                    t.ranks,
                    t.wakeups,
                    t.interventions,
                    t.fin_send,
                    t.fin_recv,
                    t.fin_group,
                    t.credit_deferrals,
                    t.quota_sheds,
                    t.drr_grants
                );
            }
        }
        if self.health.any() {
            // Optional section (same contract as `tenants`): only runs
            // where the health engine actually acted carry it. An object,
            // not an array, so it closes itself with `}`.
            o.push_str("\n  ],\n  \"health\": {");
            let kv = self.health.kv();
            for (i, (k, v)) in kv.iter().enumerate() {
                let sep = if i + 1 == kv.len() { "" } else { "," };
                let _ = write!(o, "\n    \"{k}\": {v}{sep}");
            }
            o.push_str("\n  },\n  \"proxies\": [");
        } else {
            o.push_str("\n  ],\n  \"proxies\": [");
        }
        for (i, p) in self.proxies.iter().enumerate() {
            let sep = if i + 1 == self.proxies.len() { "" } else { "," };
            let _ = write!(
                o,
                "\n    {{\"pid\": {}, \"rts\": {}, \"rtr\": {}, \"pairs_matched\": {}, \"writes_posted\": {}, \"writes_completed\": {}, \"bytes_cross_gvmi\": {}, \"bytes_staging_hop1\": {}, \"bytes_staging_hop2\": {}, \"send_q_hwm\": {}, \"recv_q_hwm\": {}, \"barrier_stalls\": {}, \"ctrl_dropped\": {}}}{sep}",
                p.pid,
                p.rts,
                p.rtr,
                p.pairs_matched,
                p.writes_posted,
                p.writes_completed,
                p.bytes_cross_gvmi,
                p.bytes_staging_hop1,
                p.bytes_staging_hop2,
                p.send_q_hwm,
                p.recv_q_hwm,
                p.barrier_stalls,
                p.ctrl_dropped
            );
        }
        o.push_str("\n  ],\n  \"recv_meta\": [");
        for (i, &(f, t, r, n)) in self.recv_meta.iter().enumerate() {
            let sep = if i + 1 == self.recv_meta.len() {
                ""
            } else {
                ","
            };
            let _ = write!(
                o,
                "\n    {{\"from\": {f}, \"to\": {t}, \"req_id\": {r}, \"count\": {n}}}{sep}"
            );
        }
        o.push_str("\n  ]\n}\n");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(m: &Metrics, pid: usize, ev: ProtoEvent) {
        let sink = m.sink();
        sink(SimTime::ZERO, Pid::from_index(pid), &ev);
    }

    #[test]
    fn folds_write_bytes_by_path() {
        let m = Metrics::new();
        feed(
            &m,
            9,
            ProtoEvent::WritePosted {
                wrid: 1,
                bytes: 100,
                path: PathKind::CrossGvmi,
                msg_id: 1,
            },
        );
        feed(
            &m,
            9,
            ProtoEvent::WritePosted {
                wrid: 2,
                bytes: 40,
                path: PathKind::StagingHop1,
                msg_id: 2,
            },
        );
        feed(
            &m,
            9,
            ProtoEvent::WritePosted {
                wrid: 3,
                bytes: 40,
                path: PathKind::StagingHop2,
                msg_id: 2,
            },
        );
        let r = m.report();
        assert_eq!(r.writes_posted, 3);
        assert_eq!(r.bytes_cross_gvmi, 100);
        assert_eq!(r.bytes_staging_hop1, 40);
        assert_eq!(r.bytes_staging_hop2, 40);
        assert_eq!(r.delivered_bytes(), 140);
    }

    #[test]
    fn windows_attribute_wakeups() {
        let m = Metrics::new();
        feed(
            &m,
            0,
            ProtoEvent::HostWakeup {
                rank: 0,
                intervention: true,
            },
        );
        feed(
            &m,
            0,
            ProtoEvent::GroupCallReturned {
                host_rank: 0,
                req_id: 0,
                gen: 1,
            },
        );
        feed(
            &m,
            0,
            ProtoEvent::HostWakeup {
                rank: 0,
                intervention: true,
            },
        );
        feed(
            &m,
            0,
            ProtoEvent::HostWakeup {
                rank: 0,
                intervention: false,
            },
        );
        feed(
            &m,
            0,
            ProtoEvent::GroupWaitDone {
                host_rank: 0,
                req_id: 0,
                gen: 1,
            },
        );
        // Outside any window after close.
        feed(
            &m,
            0,
            ProtoEvent::HostWakeup {
                rank: 0,
                intervention: true,
            },
        );
        let r = m.report();
        assert_eq!(r.host_wakeups, 4);
        assert_eq!(r.windows.len(), 1);
        let w = &r.windows[0];
        assert!(w.closed);
        assert_eq!(w.wakeups, 2);
        assert_eq!(w.interventions, 1);
        assert_eq!(r.window_interventions(), 1);
        assert_eq!(r.warm_window_interventions(), 0);
    }

    #[test]
    fn tenant_section_requires_a_multi_tenant_map() {
        let m = Metrics::new();
        feed(&m, 0, ProtoEvent::CreditDeferred { rank: 1, msg_id: 7 });
        feed(
            &m,
            0,
            ProtoEvent::QuotaShed {
                tenant: 1,
                rank: 1,
                msg_id: 8,
            },
        );
        feed(
            &m,
            0,
            ProtoEvent::DrrGrant {
                tenant: 0,
                rank: 0,
                msg_id: 7,
            },
        );
        // No map installed: totals count, but no tenant rows and no
        // "tenants" JSON section.
        let r = m.report();
        assert_eq!(r.credit_deferrals, 1);
        assert_eq!(r.quota_sheds, 1);
        assert_eq!(r.drr_grants, 1);
        assert!(r.tenants.is_empty());
        assert!(!r.to_json("t").contains("\"tenants\""));
        // A single-tenant map is ignored too.
        m.set_tenant_map(BTreeMap::from([(0, 0), (1, 0)]));
        assert!(m.report().tenants.is_empty());
        // A two-tenant map folds the rows.
        m.set_tenant_map(BTreeMap::from([(0, 0), (1, 1)]));
        let r = m.report();
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.tenants[0].tenant, 0);
        assert_eq!(r.tenants[0].drr_grants, 1);
        assert_eq!(r.tenants[0].credit_deferrals, 0);
        assert_eq!(r.tenants[1].credit_deferrals, 1);
        assert_eq!(r.tenants[1].quota_sheds, 1);
        assert!(r.to_json("t").contains("\"tenants\": ["));
    }

    #[test]
    fn health_section_requires_health_activity() {
        use crate::events::HealthPath;
        // Idle engine: no counters, no "health" JSON section, and the
        // totals() delta stream the telemetry bus publishes never grows
        // a health key.
        let m = Metrics::new();
        let r = m.report();
        assert!(!r.health.any());
        assert!(!r.to_json("t").contains("\"health\""));
        // One full breaker episode plus a shed.
        feed(
            &m,
            2,
            ProtoEvent::BreakerTripped {
                peer: 1,
                path: HealthPath::CrossGvmi,
            },
        );
        feed(
            &m,
            2,
            ProtoEvent::BreakerFastPath {
                peer: 1,
                path: HealthPath::CrossGvmi,
                msg_id: 3,
            },
        );
        feed(
            &m,
            2,
            ProtoEvent::BreakerHalfOpen {
                peer: 1,
                path: HealthPath::CrossGvmi,
            },
        );
        feed(
            &m,
            2,
            ProtoEvent::BreakerProbe {
                peer: 1,
                path: HealthPath::CrossGvmi,
                msg_id: 4,
            },
        );
        feed(
            &m,
            2,
            ProtoEvent::BreakerClosed {
                peer: 1,
                path: HealthPath::CrossGvmi,
            },
        );
        feed(
            &m,
            0,
            ProtoEvent::RetryBudgetExhausted {
                rank: 0,
                msg_id: 9,
                path: HealthPath::Ctrl,
            },
        );
        let r = m.report();
        assert_eq!(r.health.breaker_trips, 1);
        assert_eq!(r.health.breaker_half_opens, 1);
        assert_eq!(r.health.breaker_closes, 1);
        assert_eq!(r.health.breaker_probes, 1);
        assert_eq!(r.health.breaker_fastpaths, 1);
        assert_eq!(r.health.retry_budget_sheds, 1);
        let j = r.to_json("t");
        assert!(j.contains("\"health\": {"));
        assert!(j.contains("\"breaker_trips\": 1"));
        // Health counters stay out of the totals section.
        assert!(r
            .totals()
            .iter()
            .all(|(k, _)| !k.starts_with("breaker_") && *k != "retry_budget_sheds"));
    }

    #[test]
    fn json_is_deterministic_and_tagged() {
        let m = Metrics::new();
        feed(
            &m,
            3,
            ProtoEvent::RtsAtProxy {
                src_rank: 0,
                dst_rank: 1,
                tag: 5,
                msg_id: 1,
            },
        );
        let r = m.report();
        let j1 = r.to_json("unit \"test\"");
        let j2 = m.report().to_json("unit \"test\"");
        assert_eq!(j1, j2);
        assert!(j1.contains("\"schema\": \"bluefield-offload/metrics/v1\""));
        // Quotes are stripped, not escaped, to keep the writer trivial.
        assert!(j1.contains("\"bench\": \"unit test\""));
        assert!(j1.contains("\"rts\": 1"));
    }
}
