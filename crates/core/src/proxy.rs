//! The DPU proxy (worker) process.
//!
//! One proxy serves every host rank mapped to it via the paper's formula
//! `proxy_local_rank = host_rank % num_proxies_per_dpu`. It is a pure
//! event loop — the "progress engine" of paper Algorithm 1 — that:
//!
//! * matches Basic-primitive RTS/RTR control messages in send/receive
//!   queues keyed by `(src, dst, tag)` (paper Fig. 8), then moves the data
//!   either via cross-GVMI (direct host→host RDMA on behalf of the host)
//!   or via its staging buffers;
//! * caches cross-registrations in the DPU-side array-of-BSTs cache;
//! * stores group-request metadata (paper §VII-D) and executes group
//!   generations entry by entry, suspending at `Local_barrier` points and
//!   resuming from the progress engine when completions/arrivals land —
//!   the paper's deadlock-avoidance rule ("break from the function to the
//!   progress engine").
//!
//! **Ordering deviation from Algorithm 1, documented:** the paper orders
//! post-barrier entries by polling *barrier counters* written by peer
//! proxies. We deliver a per-write arrival notification to the destination
//! proxy at data-arrival time (the moral equivalent of the completion
//! counter RDMA'd alongside the payload) and gate barriers on those
//! arrivals; the `BarrierCntr` writes are still sent so the synchronization
//! traffic is modelled, but a missing counter cannot wedge a pattern whose
//! source side recorded no barrier.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rdma::{ClusterCtx, EpId, Inbox, MrKey, NetMsg, VAddr};
use simnet::{Payload, Pid, ProcessCtx};

use crate::config::{DataPath, OffloadConfig, TenantId};
use crate::events::{CacheSide, CtrlKind, HealthPath, PathKind, ProtoEvent};
use crate::health::{BreakerEvent, HealthEngine, Route};
use crate::messages::{CtrlMsg, GroupKey, WireEntry, WRID_OFF_PROXY};
use crate::reg_cache::RankAddrCache;
use crate::reliable::{backoff_delay_from, FaultRng, ReliableLink, ReqOrigin};

/// Decode a control-message payload without panicking: a malformed or
/// foreign message is surfaced as `None` so the caller can count and skip
/// it instead of taking the whole simulation down.
fn decode_ctrl(body: Payload) -> Option<CtrlMsg> {
    crate::profile_scope!("ctrl_decode");
    body.downcast::<CtrlMsg>().ok().map(|b| *b)
}

/// One tenant's cross-registration cache: budgeted per tenant on
/// multi-tenant rosters (eviction isolation), unbounded otherwise —
/// the pre-multi-tenant layout.
fn fresh_cross_cache(cfg: &OffloadConfig, world: usize) -> RankAddrCache<(MrKey, MrKey)> {
    if cfg.multi_tenant() && cfg.cache_budget > 0 {
        RankAddrCache::with_capacity(world, cfg.cache_budget)
    } else {
        RankAddrCache::new(world)
    }
}

#[allow(dead_code)] // tag/src_pid mirror the wire format
struct RtsInfo {
    src_rank: usize,
    tag: u64,
    addr: VAddr,
    len: u64,
    mkey: Option<MrKey>,
    src_rkey: Option<MrKey>,
    src_req: usize,
    src_pid: Pid,
    msg_id: u64,
    /// Sender-computed payload CRC32 (present only on payload-fault
    /// plans; carried through so every hop can be verified).
    crc: Option<u32>,
    /// Tenant the posting rank belongs to (0 on single-tenant rosters;
    /// per-tenant descriptor-share accounting).
    tenant: TenantId,
}

#[allow(dead_code)] // dst_pid mirrors the wire format
struct RtrInfo {
    dst_rank: usize,
    addr: VAddr,
    len: u64,
    rkey: MrKey,
    dst_req: usize,
    dst_pid: Pid,
    msg_id: u64,
    /// Tenant the posting rank belongs to (see [`RtsInfo::tenant`]).
    tenant: TenantId,
}

enum Completion {
    BasicPair {
        src_rank: usize,
        src_req: usize,
        dst_rank: usize,
        dst_req: usize,
        src_msg_id: u64,
        dst_msg_id: u64,
        /// Staging buffer `(addr, key, alloc len)` to release into the
        /// bounded free pool once the transfer settles (`None` on the
        /// GVMI path and in unbounded staging mode).
        staged: Option<(VAddr, MrKey, u64)>,
    },
    /// One-sided operation: only the origin gets a FIN.
    OneSided {
        src_rank: usize,
        src_req: usize,
        msg_id: u64,
    },
    /// Staging path, hop 1 done: the payload has been pulled into DPU
    /// memory; forward it. The buffer rides along so hop 2 (and the
    /// bounded pool) never consults the assignment map.
    StagingRead {
        pair: Box<(RtsInfo, RtrInfo)>,
        buf: (VAddr, MrKey),
    },
    GroupSend {
        key: GroupKey,
        gen: u64,
    },
    /// Staging path, group entry pulled into DPU memory.
    GroupStageRead {
        key: GroupKey,
        gen: u64,
        entry_idx: usize,
    },
}

/// Everything needed to verify one posted RDMA operation end-to-end and
/// re-post it if the landed bytes fail the CRC check. Tracked per wrid
/// only on payload-fault plans — clean runs never allocate one.
struct WriteCtx {
    /// Expected CRC32 of the payload, computed by the owning host at
    /// post (or wire-build) time.
    crc: u32,
    /// Transfer id the operation belongs to (event attribution).
    msg_id: u64,
    /// Data path of the original post (re-used verbatim on re-post).
    path: PathKind,
    /// RDMA READ (verify the local side) vs WRITE (verify the remote).
    is_read: bool,
    local: (EpId, VAddr, MrKey),
    remote: (EpId, VAddr, MrKey),
    len: u64,
    /// Delivery attempts so far (1 = the original post).
    attempt: u32,
    /// Arrival notification re-delivered with each re-post (group data
    /// writes; the receiver dedups by msg_id).
    notify: Option<(Pid, CtrlMsg)>,
}

struct CachedGroup {
    entries: Vec<WireEntry>,
    /// Cross-registered mkey2 per entry (GVMI path sends).
    mkey2: Vec<Option<MrKey>>,
    /// Staging buffer per entry (staging path sends).
    staging: Vec<Option<(VAddr, MrKey)>>,
    host_pid: Pid,
}

struct Instance {
    key: GroupKey,
    gen: u64,
    cursor: usize,
    outstanding: usize,
    barriers: u64,
    /// `(dst_rank, dst_req_id)` of sends since the last barrier.
    send_set: BTreeSet<(usize, usize)>,
    /// Barrier counters already written for the barrier at `cursor`.
    barrier_written: bool,
    done: bool,
}

/// Proxy bookkeeping. Every container here is order-stable (`BTreeMap` /
/// `BTreeSet`): the event loop iterates some of them, and hash-order
/// iteration would make message-matching order depend on the hasher —
/// the exact nondeterminism the schedule explorer exists to rule out
/// (and that `xtask lint` bans from these paths).
/// Arrived wire-entry msg-ids per sender `(src_rank, tag)` within one
/// group instance generation.
type ArrivalSets = BTreeMap<(usize, u64), BTreeSet<u64>>;

struct ProxyState {
    send_q: BTreeMap<(usize, usize, u64), VecDeque<RtsInfo>>,
    recv_q: BTreeMap<(usize, usize, u64), VecDeque<RtrInfo>>,
    /// Staging-buffer assignment per `(src_rank, addr, len)`.
    stage_assign: BTreeMap<(usize, u64, u64), (VAddr, MrKey)>,
    inflight: BTreeMap<u64, Completion>,
    next_wr: u64,
    /// Cross-registration caches, one GVMI namespace per tenant. A
    /// single-tenant roster keeps exactly one (key 0) cache — the
    /// pre-multi-tenant layout. Under a multi-tenant roster with a
    /// cache budget each namespace is budgeted independently, so one
    /// tenant's working set can never evict another's registrations.
    cross_caches: BTreeMap<TenantId, RankAddrCache<(MrKey, MrKey)>>,
    groups: BTreeMap<GroupKey, CachedGroup>,
    instances: Vec<Instance>,
    /// Data arrivals per `(group instance, gen)`, keyed inside by
    /// `(src_rank, tag)`. The inner sets hold the wire-entry msg_ids that
    /// arrived, so a replayed data write (proxy-restart recovery) cannot
    /// inflate the count and release a barrier early.
    arrivals: BTreeMap<(GroupKey, u64), ArrivalSets>,
    /// Staged group send entries: `(key, gen, entry index)`.
    group_staged: BTreeSet<(GroupKey, u64, usize)>,
    /// Staging reads already posted: `(key, gen, entry index)`.
    stage_read_posted: BTreeSet<(GroupKey, u64, usize)>,
    /// Host ranks that sent `Shutdown`. A set (not a counter) so a
    /// deduplicated retransmit or a post-restart replay cannot double
    /// count one rank; survives a crash (the rank *is* done).
    shutdowns: BTreeSet<usize>,
    /// `drop_first_fin` already fired on this proxy.
    fin_dropped: bool,
    /// Reliable ctrl-plane endpoint (sender retransmission table + ack
    /// generation + receiver dedup). Dormant on fault-free plans.
    rel: ReliableLink,
    /// Dedicated RNG for cross-GVMI registration failures, separate from
    /// the link's drop/dup/delay RNG so the two fault streams don't
    /// perturb each other across plans.
    xreg_rng: FaultRng,
    /// Completion journal: transfer msg_id → completed wrid, written at
    /// FIN time. Survives a crash (modelled as write-ahead metadata in
    /// host-visible memory) so a replayed, already-completed transfer is
    /// answered with a FIN resend instead of a second data write.
    completed_msgs: BTreeMap<u64, u64>,
    /// Highest finished generation per group — the group-side completion
    /// journal. Survives a crash for the same reason.
    fin_gens: BTreeMap<GroupKey, u64>,
    /// Ctrl packets handled so far (crash trigger odometer).
    steps: u32,
    /// The plan's crash already fired on this proxy.
    crashed: bool,
    /// Entries currently queued across `send_q` (incremental, so depth
    /// reporting never walks the maps).
    send_q_len: usize,
    /// Entries currently queued across `recv_q`.
    recv_q_len: usize,
    /// Entries currently queued per tenant across both queues
    /// (descriptor-share admission; maintained only on multi-tenant
    /// rosters, empty otherwise).
    tenant_q_len: BTreeMap<TenantId, usize>,
    /// Barrier points `(key, gen, cursor)` whose first stall was already
    /// reported, so polling does not inflate the stall count.
    stalled: BTreeSet<(GroupKey, u64, usize)>,
    /// Integrity context per in-flight wrid (payload-fault plans only).
    inflight_ctx: BTreeMap<u64, WriteCtx>,
    /// Corrupt operations awaiting their backoff timer, keyed by retx
    /// token.
    data_retx: BTreeMap<u64, (WriteCtx, Completion)>,
    next_retx_token: u64,
    /// Transfer ids cancelled by their host (deadline expiry or explicit
    /// cancel). Survives a crash — a cancelled request must never
    /// complete, even through a post-restart replay.
    cancelled: BTreeSet<u64>,
    /// Bounded staging free pool, keyed by `(tenant, buffer length)`
    /// (armed by `staging_cap`; empty and unused otherwise). The
    /// tenant key partitions the pool so one tenant's churn cannot
    /// starve another's buffer reuse; single-tenant runs only ever see
    /// tenant 0, i.e. the old per-length pool.
    stage_free: BTreeMap<(TenantId, u64), Vec<(VAddr, MrKey)>>,
    /// Highest contiguous completion horizon each host has advertised
    /// (FIN-journal truncation; survives a crash with the journal).
    ack_horizons: BTreeMap<usize, u64>,
    /// Fabric health engine: per-(peer, path) circuit breakers and data
    /// retry budgets (DESIGN.md §19). Inert unless `cfg.health.enabled`.
    health: HealthEngine,
}

/// Build a proxy closure suitable for [`rdma::ClusterBuilder::run`]'s
/// `proxy_fn`, running the framework with `cfg`.
pub fn proxy_fn(
    cfg: OffloadConfig,
) -> impl Fn(usize, usize, ProcessCtx, ClusterCtx) + Send + Sync + 'static {
    move |node, idx, ctx, cluster| proxy_main(node, idx, ctx, cluster, cfg.clone())
}

/// The proxy process body. Runs until every mapped host rank sends
/// `Shutdown` and all in-flight work has drained.
pub fn proxy_main(
    node: usize,
    idx: usize,
    ctx: ProcessCtx,
    cluster: ClusterCtx,
    cfg: OffloadConfig,
) {
    let spec = cluster.spec().clone();
    let mapped_hosts = (0..spec.ppn)
        .filter(|l| (node * spec.ppn + l) % spec.proxies_per_dpu == idx)
        .count();
    let my_ep = cluster.proxy_ep(node, idx);
    let inbox = Inbox::new();
    let chan = inbox.channel(|_| true);
    let mut st = ProxyState {
        send_q: BTreeMap::new(),
        recv_q: BTreeMap::new(),
        stage_assign: BTreeMap::new(),
        inflight: BTreeMap::new(),
        next_wr: 0,
        // Tenant 0 always exists so a run that never cross-registers
        // still drains the same (zero) cache stats it always has.
        cross_caches: BTreeMap::from([(0, fresh_cross_cache(&cfg, spec.world_size()))]),
        groups: BTreeMap::new(),
        instances: Vec::new(),
        arrivals: BTreeMap::new(),
        group_staged: BTreeSet::new(),
        stage_read_posted: BTreeSet::new(),
        shutdowns: BTreeSet::new(),
        fin_dropped: false,
        rel: ReliableLink::new(
            cfg.fault,
            cfg.ctrl_knobs(false),
            cfg.ctrl_bytes,
            true,
            my_ep,
        ),
        xreg_rng: FaultRng::new(cfg.fault.seed, my_ep.index() as u64 + 0x1000),
        completed_msgs: BTreeMap::new(),
        fin_gens: BTreeMap::new(),
        steps: 0,
        crashed: false,
        send_q_len: 0,
        recv_q_len: 0,
        tenant_q_len: BTreeMap::new(),
        stalled: BTreeSet::new(),
        inflight_ctx: BTreeMap::new(),
        data_retx: BTreeMap::new(),
        next_retx_token: 0,
        cancelled: BTreeSet::new(),
        stage_free: BTreeMap::new(),
        ack_horizons: BTreeMap::new(),
        health: HealthEngine::new(cfg.health, cfg.fault.seed, my_ep.index() as u64 + 0x2000),
    };
    let p = Proxy {
        ctx: &ctx,
        cluster: &cluster,
        cfg: &cfg,
        my_ep,
    };
    loop {
        if st.shutdowns.len() == mapped_hosts && p.quiescent(&st) {
            break;
        }
        let msg = chan.next_blocking(&ctx);
        p.handle(&mut st, msg);
        p.advance_all(&mut st);
    }
    for cache in st.cross_caches.values() {
        let (h, m, s) = cache.stats();
        ctx.stat_incr("offload.gvmi_cache.dpu.hit", h);
        ctx.stat_incr("offload.gvmi_cache.dpu.miss", m);
        ctx.stat_incr("offload.gvmi_cache.dpu.stale", s);
        ctx.stat_incr("offload.gvmi_cache.dpu.evict", cache.evictions());
    }
}

struct Proxy<'a> {
    ctx: &'a ProcessCtx,
    cluster: &'a ClusterCtx,
    cfg: &'a OffloadConfig,
    my_ep: EpId,
}

impl Proxy<'_> {
    fn quiescent(&self, st: &ProxyState) -> bool {
        st.inflight.is_empty()
            && st.instances.iter().all(|i| i.done)
            && st.send_q.values().all(|q| q.is_empty())
            && st.recv_q.values().all(|q| q.is_empty())
            && st.data_retx.is_empty()
            && !st.rel.has_pending()
    }

    fn handle(&self, st: &mut ProxyState, msg: NetMsg) {
        let is_packet = matches!(msg, NetMsg::Packet(_));
        let decoded = match msg {
            NetMsg::Packet(p) => decode_ctrl(p.body),
            NetMsg::Notify(b) => decode_ctrl(b),
            NetMsg::Cqe(c) => {
                self.on_cqe(st, c.wrid);
                return;
            }
        };
        let Some(body) = decoded else {
            // Cross-rank payload that is not a control message: count it
            // and move on rather than crashing the proxy.
            self.ctx.stat_incr("offload.proxy.bad_ctrl", 1);
            self.ctx.emit(&ProtoEvent::CtrlDropped {
                at_proxy: true,
                kind: CtrlKind::Unknown,
                msg_id: 0,
            });
            return;
        };
        // Crash injection: the proxy "dies" on receipt of its
        // crash_at_step'th ctrl packet, instantly restarts with all
        // volatile state lost, and processes the triggering message as
        // the first of its new life.
        if is_packet {
            st.steps += 1;
            if !st.crashed
                && self.cfg.fault.crash_at_step > 0
                && st.steps >= self.cfg.fault.crash_at_step
            {
                st.crashed = true;
                self.crash_restart(st);
            }
        }
        // Reliability envelopes (present only on armed fault plans).
        let body = match body {
            CtrlMsg::Seq {
                seq,
                from,
                from_ep,
                epoch,
                inner,
            } => {
                let fab = self.cluster.fabric();
                match st
                    .rel
                    .on_seq(self.ctx, fab, seq, from, from_ep, epoch, *inner)
                {
                    Some(m) => m,
                    None => return, // duplicate delivery
                }
            }
            CtrlMsg::Ack { seq } => {
                st.rel.on_ack(seq);
                return;
            }
            CtrlMsg::RetxTick { seq } => {
                // Proxy-originated ctrl (FINs, restart notices) has no
                // request slot to fail; abandonment is counted and
                // emitted by the link itself.
                let _ = st.rel.on_tick(self.ctx, self.cluster.fabric(), seq);
                return;
            }
            other => other,
        };
        match body {
            CtrlMsg::Rts {
                src_rank,
                dst_rank,
                tag,
                addr,
                len,
                mkey,
                src_rkey,
                src_req,
                src_pid,
                msg_id,
                crc,
                ack_horizon,
                tenant,
            } => {
                if let Some(&wrid) = st.completed_msgs.get(&msg_id) {
                    // Replayed send whose data write completed in a
                    // previous life: only the FIN can have been lost.
                    self.resend_fin(
                        st,
                        src_rank,
                        src_req,
                        wrid,
                        crate::events::FinKind::Send,
                        msg_id,
                    );
                    return;
                }
                if self.reaped(st, msg_id) || self.dup_basic(st, CtrlKind::Rts, msg_id) {
                    return;
                }
                self.note_horizon(st, src_rank, ack_horizon);
                let key = (src_rank, dst_rank, tag);
                let would_match = st.recv_q.get(&key).is_some_and(|q| !q.is_empty());
                if !would_match && self.admission_refused(st, msg_id, tenant) {
                    self.send_ctrl(
                        st,
                        self.cluster.host_ep(src_rank),
                        CtrlMsg::QueueFull { msg_id },
                    );
                    self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
                    return;
                }
                let _ = self.cluster.fabric().charge_cpu(
                    self.ctx,
                    self.my_ep,
                    self.cfg.proxy_entry_overhead,
                );
                self.ctx.stat_incr("offload.proxy.rts", 1);
                self.ctx.emit(&ProtoEvent::RtsAtProxy {
                    src_rank,
                    dst_rank,
                    tag,
                    msg_id,
                });
                let rts = RtsInfo {
                    src_rank,
                    tag,
                    addr,
                    len,
                    mkey,
                    src_rkey,
                    src_req,
                    src_pid,
                    msg_id,
                    crc,
                    tenant,
                };
                if let Some(rtr) = st.recv_q.get_mut(&key).and_then(|q| q.pop_front()) {
                    st.recv_q_len -= 1;
                    self.tenant_q_decr(st, rtr.tenant);
                    self.pair_matched(st, rts, rtr);
                } else {
                    st.send_q.entry(key).or_default().push_back(rts);
                    st.send_q_len += 1;
                    self.tenant_q_incr(st, tenant);
                    self.emit_queue_depth(st);
                }
            }
            CtrlMsg::Rtr {
                src_rank,
                dst_rank,
                tag,
                addr,
                len,
                rkey,
                dst_req,
                dst_pid,
                msg_id,
                ack_horizon,
                tenant,
            } => {
                if let Some(&wrid) = st.completed_msgs.get(&msg_id) {
                    self.resend_fin(
                        st,
                        dst_rank,
                        dst_req,
                        wrid,
                        crate::events::FinKind::Recv,
                        msg_id,
                    );
                    return;
                }
                if self.reaped(st, msg_id) || self.dup_basic(st, CtrlKind::Rtr, msg_id) {
                    return;
                }
                self.note_horizon(st, dst_rank, ack_horizon);
                let key = (src_rank, dst_rank, tag);
                let would_match = st.send_q.get(&key).is_some_and(|q| !q.is_empty());
                if !would_match && self.admission_refused(st, msg_id, tenant) {
                    self.send_ctrl(
                        st,
                        self.cluster.host_ep(dst_rank),
                        CtrlMsg::QueueFull { msg_id },
                    );
                    self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
                    return;
                }
                let _ = self.cluster.fabric().charge_cpu(
                    self.ctx,
                    self.my_ep,
                    self.cfg.proxy_entry_overhead,
                );
                self.ctx.stat_incr("offload.proxy.rtr", 1);
                self.ctx.emit(&ProtoEvent::RtrAtProxy {
                    src_rank,
                    dst_rank,
                    tag,
                    msg_id,
                });
                let rtr = RtrInfo {
                    dst_rank,
                    addr,
                    len,
                    rkey,
                    dst_req,
                    dst_pid,
                    msg_id,
                    tenant,
                };
                if let Some(rts) = st.send_q.get_mut(&key).and_then(|q| q.pop_front()) {
                    st.send_q_len -= 1;
                    self.tenant_q_decr(st, rts.tenant);
                    self.pair_matched(st, rts, rtr);
                } else {
                    st.recv_q.entry(key).or_default().push_back(rtr);
                    st.recv_q_len += 1;
                    self.tenant_q_incr(st, tenant);
                    self.emit_queue_depth(st);
                }
            }
            CtrlMsg::GroupPacket {
                key,
                gen,
                entries,
                host_pid,
            } => {
                self.ctx.stat_incr("offload.proxy.group_packets", 1);
                self.install_group(st, key, entries, host_pid);
                self.start_instance(st, key, gen);
            }
            CtrlMsg::GroupExec { key, gen } => {
                if !st.groups.contains_key(&key) {
                    // A retransmitted exec that raced a proxy restart: the
                    // group metadata died with the old life. The restart
                    // notice makes the host replay the full GroupPacket,
                    // so this stale exec is safe to drop.
                    self.ctx.stat_incr("offload.proxy.stale_exec", 1);
                    return;
                }
                let _ = self.cluster.fabric().charge_cpu(
                    self.ctx,
                    self.my_ep,
                    self.cfg.proxy_entry_overhead,
                );
                self.ctx.stat_incr("offload.proxy.group_execs", 1);
                self.start_instance(st, key, gen);
            }
            CtrlMsg::GroupArrival {
                src_rank,
                tag,
                dst_key,
                gen,
                msg_id,
            } => {
                if st.fin_gens.get(&dst_key).copied().unwrap_or(0) >= gen {
                    // Late (replayed) arrival for a generation that
                    // already finished; recording it would only leak.
                    return;
                }
                st.arrivals
                    .entry((dst_key, gen))
                    .or_default()
                    .entry((src_rank, tag))
                    .or_default()
                    .insert(msg_id);
            }
            CtrlMsg::Put {
                src_rank,
                addr,
                len,
                mkey,
                src_rkey,
                dst_rank,
                dst_addr,
                dst_rkey,
                src_req,
                src_pid,
                msg_id,
            } => {
                if let Some(&wrid) = st.completed_msgs.get(&msg_id) {
                    self.resend_fin(
                        st,
                        src_rank,
                        src_req,
                        wrid,
                        crate::events::FinKind::Send,
                        msg_id,
                    );
                    return;
                }
                if self.reaped(st, msg_id) || self.dup_basic(st, CtrlKind::Put, msg_id) {
                    return;
                }
                let _ = self.cluster.fabric().charge_cpu(
                    self.ctx,
                    self.my_ep,
                    self.cfg.proxy_entry_overhead,
                );
                self.ctx.stat_incr("offload.proxy.puts", 1);
                // A put is a pre-matched pair: synthesize the RTS/RTR and
                // run the normal data movement (either path). The checker
                // sees the synthesized pair too, keeping the matching
                // invariant uniform across two-sided and one-sided paths.
                // Both synthetic sides carry the put's transfer id.
                self.ctx.emit(&ProtoEvent::RtsAtProxy {
                    src_rank,
                    dst_rank,
                    tag: 0,
                    msg_id,
                });
                self.ctx.emit(&ProtoEvent::RtrAtProxy {
                    src_rank,
                    dst_rank,
                    tag: 0,
                    msg_id,
                });
                let rts = RtsInfo {
                    src_rank,
                    tag: 0,
                    addr,
                    len,
                    mkey,
                    src_rkey,
                    src_req,
                    src_pid,
                    msg_id,
                    // One-sided operations are exempt from end-to-end
                    // integrity (documented relaxation: no receive side
                    // exists to re-derive the expected CRC from).
                    crc: None,
                    tenant: self.cfg.tenant_of(src_rank),
                };
                let rtr = RtrInfo {
                    dst_rank,
                    addr: dst_addr,
                    len,
                    rkey: dst_rkey,
                    dst_req: usize::MAX, // no receive-side request
                    dst_pid: src_pid,
                    msg_id,
                    tenant: self.cfg.tenant_of(dst_rank),
                };
                self.pair_matched(st, rts, rtr);
            }
            CtrlMsg::Get {
                src_rank,
                local_addr,
                len,
                local_mkey,
                remote_rank,
                remote_addr,
                remote_rkey,
                src_req,
                msg_id,
                ..
            } => {
                if let Some(&wrid) = st.completed_msgs.get(&msg_id) {
                    self.resend_fin(
                        st,
                        src_rank,
                        src_req,
                        wrid,
                        crate::events::FinKind::Send,
                        msg_id,
                    );
                    return;
                }
                if self.reaped(st, msg_id) || self.dup_basic(st, CtrlKind::Get, msg_id) {
                    return;
                }
                let _ = self.cluster.fabric().charge_cpu(
                    self.ctx,
                    self.my_ep,
                    self.cfg.proxy_entry_overhead,
                );
                self.ctx.stat_incr("offload.proxy.gets", 1);
                assert_eq!(
                    self.cfg.data_path,
                    DataPath::Gvmi,
                    "one-sided get requires the GVMI data path"
                );
                // Cross-register the origin's destination buffer, then pull
                // the remote symmetric memory straight into it.
                let mkey2 = self.cross_reg_cached(st, src_rank, local_addr, len, local_mkey);
                let wr = self.next_wrid(st);
                self.ctx.emit(&ProtoEvent::Mkey2Used { mkey2 });
                self.ctx.emit(&ProtoEvent::WritePosted {
                    wrid: wr,
                    bytes: len,
                    path: PathKind::CrossGvmi,
                    msg_id,
                });
                st.inflight.insert(
                    wr,
                    Completion::OneSided {
                        src_rank,
                        src_req,
                        msg_id,
                    },
                );
                self.cluster
                    .fabric()
                    .rdma_read(
                        self.ctx,
                        self.my_ep,
                        (self.cluster.host_ep(src_rank), local_addr, mkey2),
                        (self.cluster.host_ep(remote_rank), remote_addr, remote_rkey),
                        len,
                        Some(wr),
                    )
                    .expect("one-sided get read");
            }
            CtrlMsg::BarrierCntr { .. } => {
                // Synchronization traffic modelled on the wire; ordering is
                // enforced by arrivals (see module docs).
                self.ctx.stat_incr("offload.proxy.barrier_cntr", 1);
            }
            CtrlMsg::Shutdown { rank } => {
                st.shutdowns.insert(rank);
            }
            CtrlMsg::Cancel { msg_id } => {
                // Suppress every future match for this transfer id, then
                // reap any descriptor already queued for it. The host has
                // already failed the request; completing it now would
                // hand bytes to a caller that gave up on them.
                st.cancelled.insert(msg_id);
                let mut reaped = 0usize;
                let mut reaped_tenants = Vec::new();
                for q in st.send_q.values_mut() {
                    q.retain(|r| {
                        if r.msg_id != msg_id {
                            return true;
                        }
                        reaped += 1;
                        reaped_tenants.push(r.tenant);
                        false
                    });
                }
                st.send_q_len -= reaped;
                let mut rreaped = 0usize;
                for q in st.recv_q.values_mut() {
                    q.retain(|r| {
                        if r.msg_id != msg_id {
                            return true;
                        }
                        rreaped += 1;
                        reaped_tenants.push(r.tenant);
                        false
                    });
                }
                st.recv_q_len -= rreaped;
                for t in reaped_tenants {
                    self.tenant_q_decr(st, t);
                }
                if reaped + rreaped > 0 {
                    self.ctx
                        .stat_incr("offload.cancel.reaped", (reaped + rreaped) as u64);
                    self.ctx.emit(&ProtoEvent::ReqReaped { msg_id });
                }
            }
            CtrlMsg::DataRetxTick { token } => {
                // Backoff expired for a corrupt payload: re-post it. A
                // missing token means a crash wiped the retx table; the
                // host's post-restart replay re-drives the transfer.
                if let Some((wctx, completion)) = st.data_retx.remove(&token) {
                    self.repost(st, wctx, completion);
                }
            }
            other => panic!("unexpected control message at proxy: {other:?}"),
        }
    }

    /// Send a ctrl message to `to`, through the reliable link when the
    /// run's fault plan arms it. On a fault-free plan this is the exact
    /// pre-reliability direct send, so clean baselines do not move.
    fn send_ctrl(&self, st: &mut ProxyState, to: EpId, msg: CtrlMsg) {
        crate::profile_scope!("ctrl_encode");
        if self.cfg.fault.reliable() {
            st.rel.send(
                self.ctx,
                self.cluster.fabric(),
                to,
                self.cfg.ctrl_bytes,
                msg,
                ReqOrigin::Free,
            );
        } else {
            self.cluster
                .fabric()
                .send_packet(self.ctx, self.my_ep, to, self.cfg.ctrl_bytes, Box::new(msg))
                .expect("proxy ctrl send");
        }
    }

    /// Journal hit: a replayed request whose data movement completed in a
    /// previous life. The payload is already placed — only the FIN can
    /// have been lost — so resend it without re-running the transfer (and
    /// without re-emitting Rts/Rtr protocol events, keeping the checker's
    /// flow accounting balanced).
    fn resend_fin(
        &self,
        st: &mut ProxyState,
        rank: usize,
        req: usize,
        wrid: u64,
        kind: crate::events::FinKind,
        msg_id: u64,
    ) {
        let credit = self.fin_credit(st, rank);
        let msg = match kind {
            crate::events::FinKind::Recv => CtrlMsg::FinRecv {
                req,
                msg_id,
                credit,
            },
            _ => CtrlMsg::FinSend {
                req,
                msg_id,
                credit,
            },
        };
        self.send_ctrl(st, self.cluster.host_ep(rank), msg);
        self.ctx.emit(&ProtoEvent::FinSent {
            rank,
            req,
            wrid,
            kind,
            msg_id,
        });
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        self.ctx.stat_incr("offload.reliable.fin_resends", 1);
    }

    /// Is a basic transfer with this msg_id already queued or in flight?
    /// Guards against a retransmitted Rts/Rtr racing the host's
    /// post-restart replay of the same request.
    fn basic_active(&self, st: &ProxyState, msg_id: u64) -> bool {
        st.send_q.values().flatten().any(|r| r.msg_id == msg_id)
            || st.recv_q.values().flatten().any(|r| r.msg_id == msg_id)
            || st.inflight.values().any(|c| match c {
                Completion::BasicPair {
                    src_msg_id,
                    dst_msg_id,
                    ..
                } => *src_msg_id == msg_id || *dst_msg_id == msg_id,
                Completion::OneSided { msg_id: m, .. } => *m == msg_id,
                Completion::StagingRead { pair, .. } => {
                    pair.0.msg_id == msg_id || pair.1.msg_id == msg_id
                }
                _ => false,
            })
    }

    /// Duplicate-drop bookkeeping around [`Self::basic_active`]: true
    /// means the message was a duplicate and has been counted.
    fn dup_basic(&self, st: &ProxyState, kind: CtrlKind, msg_id: u64) -> bool {
        if !self.basic_active(st, msg_id) {
            return false;
        }
        self.ctx.stat_incr("offload.reliable.dups_dropped", 1);
        self.ctx.emit(&ProtoEvent::CtrlDuplicateDropped {
            at_proxy: true,
            kind,
            msg_id,
        });
        true
    }

    /// Suppress (and count) a descriptor for a transfer its host already
    /// cancelled.
    fn reaped(&self, st: &ProxyState, msg_id: u64) -> bool {
        if !st.cancelled.contains(&msg_id) {
            return false;
        }
        self.ctx.stat_incr("offload.cancel.reaped", 1);
        self.ctx.emit(&ProtoEvent::ReqReaped { msg_id });
        true
    }

    /// Record the completion horizon a host piggybacked on its ctrl
    /// message (journal truncation; inert unless the cap is armed).
    fn note_horizon(&self, st: &mut ProxyState, rank: usize, ack_horizon: u64) {
        if self.cfg.journal_cap == 0 {
            return;
        }
        let h = st.ack_horizons.entry(rank).or_insert(0);
        *h = (*h).max(ack_horizon);
    }

    /// Track per-tenant queued-descriptor counts (multi-tenant rosters
    /// only; single-tenant runs never touch the map).
    fn tenant_q_incr(&self, st: &mut ProxyState, tenant: TenantId) {
        if self.cfg.multi_tenant() {
            *st.tenant_q_len.entry(tenant).or_insert(0) += 1;
        }
    }

    fn tenant_q_decr(&self, st: &mut ProxyState, tenant: TenantId) {
        if self.cfg.multi_tenant() {
            if let Some(n) = st.tenant_q_len.get_mut(&tenant) {
                *n = n.saturating_sub(1);
            }
        }
    }

    /// Queued descriptors currently charged to `tenant`.
    fn tenant_q(&self, st: &ProxyState, tenant: TenantId) -> usize {
        st.tenant_q_len.get(&tenant).copied().unwrap_or(0)
    }

    /// Would admitting one more queued descriptor bust the configured
    /// cap? Counts both queues against one budget — the paper's worker
    /// owns a single descriptor pool. Under a multi-tenant roster the
    /// pool is additionally partitioned into weighted per-tenant shares
    /// ([`OffloadConfig::tenant_share`]), so a flooding tenant fills
    /// only its own share and well-behaved tenants keep admission.
    /// Emits the refusal events; the caller sends the `QueueFull` nack
    /// (destination differs per side).
    fn admission_refused(&self, st: &ProxyState, msg_id: u64, tenant: TenantId) -> bool {
        if self.cfg.queue_cap == 0 {
            return false;
        }
        let global_full = st.send_q_len + st.recv_q_len >= self.cfg.queue_cap;
        let share_full =
            self.cfg.multi_tenant() && self.tenant_q(st, tenant) >= self.cfg.tenant_share(tenant);
        if !global_full && !share_full {
            return false;
        }
        self.ctx.stat_incr("offload.credit.queue_full", 1);
        self.ctx.emit(&ProtoEvent::QueueFullNack { msg_id });
        true
    }

    /// Free descriptor-queue slots to piggyback on an outgoing FIN
    /// (always 0 when the cap is unarmed, keeping clean wires
    /// identical). Per-tenant on multi-tenant rosters: the credit a
    /// host sees never exceeds what its own tenant's share could
    /// actually admit, so one tenant's free slots cannot tempt another
    /// tenant's host into a burst of doomed re-posts.
    fn fin_credit(&self, st: &ProxyState, rank: usize) -> u32 {
        if self.cfg.queue_cap == 0 {
            return 0;
        }
        let global = self
            .cfg
            .queue_cap
            .saturating_sub(st.send_q_len + st.recv_q_len);
        if !self.cfg.multi_tenant() {
            return global as u32;
        }
        let tenant = self.cfg.tenant_of(rank);
        let share_free = self
            .cfg
            .tenant_share(tenant)
            .saturating_sub(self.tenant_q(st, tenant));
        global.min(share_free) as u32
    }

    /// Return a settled transfer's staging buffer to the bounded free
    /// pool of the owning tenant. `None` (GVMI path, or unbounded
    /// staging mode where buffers live in the assignment map) is a
    /// no-op; a pool already at its cap drops the buffer instead of
    /// growing. `staging_cap` bounds each `(tenant, length)` pool, so
    /// a flooding tenant's churn is confined to its own partition.
    fn release_staged(
        &self,
        st: &mut ProxyState,
        tenant: TenantId,
        staged: Option<(VAddr, MrKey, u64)>,
    ) {
        let Some((buf, key, len)) = staged else {
            return;
        };
        if self.cfg.staging_cap == 0 {
            return;
        }
        let pool = st.stage_free.entry((tenant, len)).or_default();
        if pool.len() < self.cfg.staging_cap {
            pool.push((buf, key));
        } else {
            self.ctx.stat_incr("offload.staging.dropped", 1);
        }
    }

    /// Bound the durable FIN journal: once it exceeds the cap, drop every
    /// entry at or below its owning host's advertised completion horizon
    /// (those transfers can never be replayed — the host saw their FINs).
    /// Emits a size sample per settle so tests can track the high-water
    /// mark. No-op unless the cap is armed.
    ///
    /// Under a multi-tenant roster the cap is applied per tenant
    /// (`msg_id >> 32` names the owning rank, hence its tenant): a
    /// flooding tenant triggers truncation of only its own entries, and
    /// a quiet tenant's journal is never scanned on the flooder's
    /// account. Truncation only ever drops entries the owning host has
    /// acknowledged, so cross-tenant recovery safety is unconditional.
    fn truncate_journal(&self, st: &mut ProxyState) {
        if self.cfg.journal_cap == 0 {
            return;
        }
        crate::profile_scope!("journal_truncate");
        if self.cfg.multi_tenant() {
            let mut per_tenant: BTreeMap<TenantId, usize> = BTreeMap::new();
            for mid in st.completed_msgs.keys() {
                let tenant = self.cfg.tenant_of((mid >> 32) as usize);
                *per_tenant.entry(tenant).or_insert(0) += 1;
            }
            let over: BTreeSet<TenantId> = per_tenant
                .into_iter()
                .filter(|&(_, n)| n > self.cfg.journal_cap)
                .map(|(t, _)| t)
                .collect();
            if !over.is_empty() {
                let horizons = &st.ack_horizons;
                let cfg = self.cfg;
                let before = st.completed_msgs.len();
                st.completed_msgs.retain(|mid, _| {
                    let rank = (mid >> 32) as usize;
                    if !over.contains(&cfg.tenant_of(rank)) {
                        return true;
                    }
                    let seq = mid & 0xFFFF_FFFF;
                    seq > horizons.get(&rank).copied().unwrap_or(0)
                });
                let dropped = (before - st.completed_msgs.len()) as u64;
                if dropped > 0 {
                    self.ctx.stat_incr("offload.journal.truncations", 1);
                    self.ctx.emit(&ProtoEvent::JournalTruncated { dropped });
                }
            }
        } else if st.completed_msgs.len() > self.cfg.journal_cap {
            let horizons = &st.ack_horizons;
            let before = st.completed_msgs.len();
            st.completed_msgs.retain(|mid, _| {
                let rank = (mid >> 32) as usize;
                let seq = mid & 0xFFFF_FFFF;
                seq > horizons.get(&rank).copied().unwrap_or(0)
            });
            let dropped = (before - st.completed_msgs.len()) as u64;
            if dropped > 0 {
                self.ctx.stat_incr("offload.journal.truncations", 1);
                self.ctx.emit(&ProtoEvent::JournalTruncated { dropped });
            }
        }
        self.ctx.emit(&ProtoEvent::JournalSize {
            len: st.completed_msgs.len() as u64,
        });
    }

    /// Crash + restart in one step (the simulated process never leaves
    /// its event loop). Volatile state — matching queues, in-flight
    /// table, caches, group metadata, running instances — is lost. The
    /// durable journals (completed transfers, finished generations,
    /// arrival sets, shutdown set, wrid odometer) survive, modelling
    /// metadata the proxy writes ahead into host-visible memory. A fresh
    /// epoch is announced to every host so they invalidate DPU-dependent
    /// cached state and replay in-flight requests.
    fn crash_restart(&self, st: &mut ProxyState) {
        for cache in st.cross_caches.values() {
            let (h, m, s) = cache.stats();
            self.ctx.stat_incr("offload.gvmi_cache.dpu.hit", h);
            self.ctx.stat_incr("offload.gvmi_cache.dpu.miss", m);
            self.ctx.stat_incr("offload.gvmi_cache.dpu.stale", s);
            self.ctx
                .stat_incr("offload.gvmi_cache.dpu.evict", cache.evictions());
        }
        st.send_q.clear();
        st.recv_q.clear();
        st.send_q_len = 0;
        st.recv_q_len = 0;
        st.tenant_q_len.clear();
        st.stage_assign.clear();
        st.inflight.clear();
        st.cross_caches =
            BTreeMap::from([(0, fresh_cross_cache(self.cfg, self.cluster.world_size()))]);
        st.groups.clear();
        st.instances.clear();
        st.group_staged.clear();
        st.stage_read_posted.clear();
        st.stalled.clear();
        // The retx table and staging pool are volatile; the cancelled
        // set and advertised horizons are durable (a cancelled request
        // must stay dead across a restart, and a stale horizon only
        // delays truncation — never loses a needed journal entry).
        st.inflight_ctx.clear();
        st.data_retx.clear();
        st.stage_free.clear();
        st.rel.reset_for_restart();
        // Pre-crash path verdicts are stale: every tracked breaker drops
        // to half-open so the first post per (peer, path) re-probes, and
        // the data retry budgets refill (DESIGN.md §19 recovery).
        if st.health.enabled() {
            st.health.reset_half_open();
        }
        let epoch = st.rel.epoch();
        self.ctx.stat_incr("offload.reliable.proxy_restarts", 1);
        self.ctx.emit(&ProtoEvent::ProxyRestarted { epoch });
        for rank in 0..self.cluster.world_size() {
            st.rel.send(
                self.ctx,
                self.cluster.fabric(),
                self.cluster.host_ep(rank),
                self.cfg.ctrl_bytes,
                CtrlMsg::ProxyRestarted {
                    proxy: self.my_ep,
                    epoch,
                },
                ReqOrigin::Free,
            );
        }
    }

    // ---- Basic primitives ----

    /// Staging buffer for a given source buffer. Unbounded mode (the
    /// default) allocates and registers once per `(src_rank, addr, len)`
    /// and keeps the assignment forever. With `staging_cap` armed the
    /// per-source map is bypassed: buffers come from a bounded free pool
    /// keyed by length and are recycled when their transfer settles, so
    /// the proxy's staging footprint is `cap × live lengths` instead of
    /// one buffer per distinct source buffer ever seen.
    fn staging_buffer_for(
        &self,
        st: &mut ProxyState,
        src_rank: usize,
        addr: VAddr,
        len: u64,
    ) -> (VAddr, MrKey) {
        let fab = self.cluster.fabric();
        if self.cfg.staging_cap > 0 {
            let tenant = self.cfg.tenant_of(src_rank);
            if let Some(b) = st.stage_free.get_mut(&(tenant, len)).and_then(|p| p.pop()) {
                self.ctx.stat_incr("offload.staging.reclaimed", 1);
                self.ctx.emit(&ProtoEvent::StagingReclaimed { len });
                return b;
            }
            let buf = fab.alloc(self.my_ep, len);
            let key = fab
                .reg_mr(self.ctx, self.my_ep, buf, len)
                .expect("staging buffer registration");
            self.ctx.stat_incr("offload.proxy.staging_buffers", 1);
            return (buf, key);
        }
        let akey = (src_rank, addr.0, len);
        if let Some(&b) = st.stage_assign.get(&akey) {
            return b;
        }
        let buf = fab.alloc(self.my_ep, len);
        let key = fab
            .reg_mr(self.ctx, self.my_ep, buf, len)
            .expect("staging buffer registration");
        st.stage_assign.insert(akey, (buf, key));
        self.ctx.stat_incr("offload.proxy.staging_buffers", 1);
        (buf, key)
    }

    fn pair_matched(&self, st: &mut ProxyState, rts: RtsInfo, rtr: RtrInfo) {
        self.ctx.emit(&ProtoEvent::PairMatched {
            src_rank: rts.src_rank,
            dst_rank: rtr.dst_rank,
            tag: rts.tag,
            send_msg_id: rts.msg_id,
            recv_msg_id: rtr.msg_id,
        });
        match self.cfg.data_path {
            DataPath::Gvmi => self.post_gvmi_pair(st, rts, rtr),
            DataPath::Staging => self.post_staging_read(st, rts, rtr),
        }
    }

    /// One per-transfer fallback from cross-GVMI to the staging path:
    /// the count and event every downgrade site shares (and the single
    /// place the breaker fast-path hooks around).
    fn note_fallback(&self, src_rank: usize, dst_rank: usize, tag: u64, msg_id: u64) {
        self.ctx.stat_incr("offload.fallback.staging", 1);
        self.ctx.emit(&ProtoEvent::FallbackToStaging {
            src_rank,
            dst_rank,
            tag,
            msg_id,
        });
    }

    /// Feed one `(peer, path)` outcome into the health engine and emit
    /// any breaker transition. No-op while the engine is disabled.
    fn note_breaker(&self, st: &mut ProxyState, peer: usize, path: HealthPath, ok: bool) {
        match st.health.on_outcome(peer, path, ok) {
            Some(BreakerEvent::Tripped) => {
                self.ctx.stat_incr("offload.health.breaker_trips", 1);
                self.ctx.emit(&ProtoEvent::BreakerTripped { peer, path });
            }
            Some(BreakerEvent::Closed) => {
                self.ctx.stat_incr("offload.health.breaker_closes", 1);
                self.ctx.emit(&ProtoEvent::BreakerClosed { peer, path });
            }
            None => {}
        }
    }

    /// A breaker just half-opened and admitted `msg_id` as its probe:
    /// emit the transition pair the timeline reconstructs states from.
    fn note_probe(&self, peer: usize, path: HealthPath, msg_id: u64) {
        self.ctx.stat_incr("offload.health.half_opens", 1);
        self.ctx.emit(&ProtoEvent::BreakerHalfOpen { peer, path });
        self.ctx.stat_incr("offload.health.probes", 1);
        self.ctx
            .emit(&ProtoEvent::BreakerProbe { peer, path, msg_id });
    }

    /// Cross-register (through the DPU GVMI cache) and write straight from
    /// the source host's memory to the destination host (paper Fig. 6,
    /// GVMI path). A failed cross-GVMI registration (injected via
    /// `FaultPlan::xreg_fail_pm`) downgrades this one transfer to the
    /// staging path instead of failing it. With the health engine armed,
    /// an open cross-GVMI breaker for the source rank routes straight to
    /// staging — no registration attempt, no per-message fallback
    /// round-trip (DESIGN.md §19).
    fn post_gvmi_pair(&self, st: &mut ProxyState, rts: RtsInfo, rtr: RtrInfo) {
        let peer = rts.src_rank;
        match st.health.route(peer, HealthPath::CrossGvmi) {
            // Fast-path needs the rkey the host carries on fallback-armed
            // plans; without one the post must take the primary path.
            Route::FastPath if rts.src_rkey.is_some() => {
                self.ctx.stat_incr("offload.health.fastpaths", 1);
                self.ctx.emit(&ProtoEvent::BreakerFastPath {
                    peer,
                    path: HealthPath::CrossGvmi,
                    msg_id: rts.msg_id,
                });
                self.post_staging_read(st, rts, rtr);
                return;
            }
            Route::Probe => self.note_probe(peer, HealthPath::CrossGvmi, rts.msg_id),
            _ => {}
        }
        let mkey = rts.mkey.expect("GVMI RTS carries an mkey");
        let reg = self.try_cross_reg(st, peer, rts.addr, rts.len, mkey);
        // The registration result is the breaker's (and the probe's)
        // verdict; a successful probe has just rebuilt the reg-cache
        // entry, so closing the breaker resumes with warm state.
        self.note_breaker(st, peer, HealthPath::CrossGvmi, reg.is_some());
        let Some(mkey2) = reg else {
            self.note_fallback(rts.src_rank, rtr.dst_rank, rts.tag, rts.msg_id);
            self.post_staging_read(st, rts, rtr);
            return;
        };
        let wr = self.next_wrid(st);
        let len = rts.len.min(rtr.len);
        self.ctx.emit(&ProtoEvent::Mkey2Used { mkey2 });
        self.ctx.emit(&ProtoEvent::WritePosted {
            wrid: wr,
            bytes: len,
            path: PathKind::CrossGvmi,
            msg_id: rts.msg_id,
        });
        // End-to-end integrity: the host's CRC covers exactly rts.len
        // bytes, so a truncating match (shorter receive) is exempt.
        if let Some(crc) = rts.crc.filter(|_| len == rts.len) {
            st.inflight_ctx.insert(
                wr,
                WriteCtx {
                    crc,
                    msg_id: rts.msg_id,
                    path: PathKind::CrossGvmi,
                    is_read: false,
                    local: (self.cluster.host_ep(rts.src_rank), rts.addr, mkey2),
                    remote: (self.cluster.host_ep(rtr.dst_rank), rtr.addr, rtr.rkey),
                    len,
                    attempt: 1,
                    notify: None,
                },
            );
        }
        st.inflight.insert(
            wr,
            Completion::BasicPair {
                src_rank: rts.src_rank,
                src_req: rts.src_req,
                dst_rank: rtr.dst_rank,
                dst_req: rtr.dst_req,
                src_msg_id: rts.msg_id,
                dst_msg_id: rtr.msg_id,
                staged: None,
            },
        );
        self.cluster
            .fabric()
            .rdma_write(
                self.ctx,
                self.my_ep,
                (self.cluster.host_ep(rts.src_rank), rts.addr, mkey2),
                (self.cluster.host_ep(rtr.dst_rank), rtr.addr, rtr.rkey),
                len,
                Some(wr),
                None,
            )
            .expect("GVMI data write");
        self.ctx.stat_incr("offload.proxy.gvmi_writes", 1);
    }

    /// Staging hop 1: pull the payload out of the source host's memory
    /// into DPU staging with an RDMA READ (the BluesMPI worker-read).
    /// With the health engine armed, an open staging breaker for the
    /// source rank degrades the transfer to a host-direct write (no DPU
    /// hop) when the RTS carries an mkey to cross-register with.
    fn post_staging_read(&self, st: &mut ProxyState, rts: RtsInfo, rtr: RtrInfo) {
        let peer = rts.src_rank;
        match st.health.route(peer, HealthPath::Staging) {
            Route::FastPath if rts.mkey.is_some() => {
                self.ctx.stat_incr("offload.health.fastpaths", 1);
                self.ctx.emit(&ProtoEvent::BreakerFastPath {
                    peer,
                    path: HealthPath::Staging,
                    msg_id: rts.msg_id,
                });
                self.post_host_direct(st, rts, rtr);
                return;
            }
            Route::Probe => self.note_probe(peer, HealthPath::Staging, rts.msg_id),
            _ => {}
        }
        let (buf, key) = self.staging_buffer_for(st, rts.src_rank, rts.addr, rts.len);
        let src_rkey = rts.src_rkey.expect("staging RTS carries an rkey");
        let wr = self.next_wrid(st);
        let len = rts.len.min(rtr.len);
        let src_ep = self.cluster.host_ep(rts.src_rank);
        let src_addr = rts.addr;
        self.ctx.emit(&ProtoEvent::WritePosted {
            wrid: wr,
            bytes: len,
            path: PathKind::StagingHop1,
            msg_id: rts.msg_id,
        });
        // Verify the staged copy too: a corruption healed on hop 1 keeps
        // hop 2's retransmissions meaningful (re-sending a corrupt
        // staged image could never converge).
        if let Some(crc) = rts.crc.filter(|_| len == rts.len) {
            st.inflight_ctx.insert(
                wr,
                WriteCtx {
                    crc,
                    msg_id: rts.msg_id,
                    path: PathKind::StagingHop1,
                    is_read: true,
                    local: (self.my_ep, buf, key),
                    remote: (src_ep, src_addr, src_rkey),
                    len,
                    attempt: 1,
                    notify: None,
                },
            );
        }
        st.inflight.insert(
            wr,
            Completion::StagingRead {
                pair: Box::new((rts, rtr)),
                buf: (buf, key),
            },
        );
        self.cluster
            .fabric()
            .rdma_read(
                self.ctx,
                self.my_ep,
                (self.my_ep, buf, key),
                (src_ep, src_addr, src_rkey),
                len,
                Some(wr),
            )
            .expect("staging read");
        self.ctx.stat_incr("offload.proxy.staging_reads", 1);
    }

    /// Staging hop 2: forward the staged payload from DPU memory to the
    /// destination host (paper Fig. 6 — the extra hop). `buf` is the
    /// staging buffer hop 1 read into (rode along in the completion).
    fn post_staged_pair(
        &self,
        st: &mut ProxyState,
        rts: RtsInfo,
        rtr: RtrInfo,
        buf: (VAddr, MrKey),
    ) {
        let (buf, key) = buf;
        let wr = self.next_wrid(st);
        let len = rts.len.min(rtr.len);
        self.ctx.emit(&ProtoEvent::WritePosted {
            wrid: wr,
            bytes: len,
            path: PathKind::StagingHop2,
            msg_id: rts.msg_id,
        });
        if let Some(crc) = rts.crc.filter(|_| len == rts.len) {
            st.inflight_ctx.insert(
                wr,
                WriteCtx {
                    crc,
                    msg_id: rts.msg_id,
                    path: PathKind::StagingHop2,
                    is_read: false,
                    local: (self.my_ep, buf, key),
                    remote: (self.cluster.host_ep(rtr.dst_rank), rtr.addr, rtr.rkey),
                    len,
                    attempt: 1,
                    notify: None,
                },
            );
        }
        let staged = (self.cfg.staging_cap > 0).then_some((buf, key, rts.len));
        st.inflight.insert(
            wr,
            Completion::BasicPair {
                src_rank: rts.src_rank,
                src_req: rts.src_req,
                dst_rank: rtr.dst_rank,
                dst_req: rtr.dst_req,
                src_msg_id: rts.msg_id,
                dst_msg_id: rtr.msg_id,
                staged,
            },
        );
        self.cluster
            .fabric()
            .rdma_write(
                self.ctx,
                self.my_ep,
                (self.my_ep, buf, key),
                (self.cluster.host_ep(rtr.dst_rank), rtr.addr, rtr.rkey),
                len,
                Some(wr),
                None,
            )
            .expect("staging forward write");
        self.ctx.stat_incr("offload.proxy.staging_forwards", 1);
    }

    /// Degraded-mode data movement while a peer's staging breaker is
    /// open (DESIGN.md §19): cross-register through the cache — the sick
    /// resource is the staging hop, not registration, so this uses the
    /// infallible path — and write host-to-host directly, skipping DPU
    /// memory entirely.
    fn post_host_direct(&self, st: &mut ProxyState, rts: RtsInfo, rtr: RtrInfo) {
        let mkey = rts.mkey.expect("host-direct degrade requires an mkey");
        let mkey2 = self.cross_reg_cached(st, rts.src_rank, rts.addr, rts.len, mkey);
        let wr = self.next_wrid(st);
        let len = rts.len.min(rtr.len);
        self.ctx.emit(&ProtoEvent::Mkey2Used { mkey2 });
        self.ctx.emit(&ProtoEvent::WritePosted {
            wrid: wr,
            bytes: len,
            path: PathKind::CrossGvmi,
            msg_id: rts.msg_id,
        });
        if let Some(crc) = rts.crc.filter(|_| len == rts.len) {
            st.inflight_ctx.insert(
                wr,
                WriteCtx {
                    crc,
                    msg_id: rts.msg_id,
                    path: PathKind::CrossGvmi,
                    is_read: false,
                    local: (self.cluster.host_ep(rts.src_rank), rts.addr, mkey2),
                    remote: (self.cluster.host_ep(rtr.dst_rank), rtr.addr, rtr.rkey),
                    len,
                    attempt: 1,
                    notify: None,
                },
            );
        }
        st.inflight.insert(
            wr,
            Completion::BasicPair {
                src_rank: rts.src_rank,
                src_req: rts.src_req,
                dst_rank: rtr.dst_rank,
                dst_req: rtr.dst_req,
                src_msg_id: rts.msg_id,
                dst_msg_id: rtr.msg_id,
                staged: None,
            },
        );
        self.cluster
            .fabric()
            .rdma_write(
                self.ctx,
                self.my_ep,
                (self.cluster.host_ep(rts.src_rank), rts.addr, mkey2),
                (self.cluster.host_ep(rtr.dst_rank), rtr.addr, rtr.rkey),
                len,
                Some(wr),
                None,
            )
            .expect("host-direct degraded write");
        self.ctx.stat_incr("offload.health.host_direct_writes", 1);
    }

    /// Infallible cross-registration (one-sided gets, which have no
    /// staging fallback — a documented exemption).
    fn cross_reg_cached(
        &self,
        st: &mut ProxyState,
        src_rank: usize,
        addr: VAddr,
        len: u64,
        mkey: MrKey,
    ) -> MrKey {
        self.cross_reg_inner(st, src_rank, addr, len, mkey, false)
            .expect("infallible cross registration")
    }

    /// Cross-registration that may fail per the fault plan's
    /// `xreg_fail_pm`; `None` tells the caller to fall back to staging.
    /// A cache hit never fails: no fresh registration call is made.
    fn try_cross_reg(
        &self,
        st: &mut ProxyState,
        src_rank: usize,
        addr: VAddr,
        len: u64,
        mkey: MrKey,
    ) -> Option<MrKey> {
        self.cross_reg_inner(st, src_rank, addr, len, mkey, true)
    }

    fn cross_reg_inner(
        &self,
        st: &mut ProxyState,
        src_rank: usize,
        addr: VAddr,
        len: u64,
        mkey: MrKey,
        may_fail: bool,
    ) -> Option<MrKey> {
        let fab = self.cluster.fabric();
        // Cross-registrations live in the owning tenant's GVMI
        // namespace; tenants never share (or validate against) each
        // other's entries.
        let tenant = self.cfg.tenant_of(src_rank);
        let world = self.cluster.world_size();
        if self.cfg.use_gvmi_cache {
            let (hit, outcome) = {
                let cache = st
                    .cross_caches
                    .entry(tenant)
                    .or_insert_with(|| fresh_cross_cache(self.cfg, world));
                let (v, outcome) =
                    cache.get_validated_outcome(src_rank, addr.0, len, |(m, _)| *m == mkey);
                (v.copied(), outcome)
            };
            self.ctx.emit(&ProtoEvent::CrossRegCacheLookup {
                host_rank: src_rank,
                addr,
                len,
                outcome,
                mkey: hit.map(|(m, _)| m),
                mkey2: hit.map(|(_, m2)| m2),
            });
            if let Some((_, mkey2)) = hit {
                return Some(mkey2);
            }
        }
        if self.cfg.fault.skip_cross_reg {
            // Deliberate protocol violation: hand back the host's mkey as
            // if it were a cross-registration. No CrossReg event is
            // emitted, so the checker flags the first Mkey2Used.
            return Some(mkey);
        }
        if may_fail && st.xreg_rng.chance(self.cfg.fault.xreg_fail_pm) {
            return None;
        }
        let gvmi = fab.gvmi_of(self.my_ep).expect("proxy endpoint has a GVMI");
        let mkey2 = fab
            .cross_reg(self.ctx, self.my_ep, addr, len, mkey, gvmi)
            .expect("cross registration");
        self.ctx.emit(&ProtoEvent::CrossReg {
            host_rank: src_rank,
            addr,
            len,
            mkey,
            mkey2,
        });
        if self.cfg.use_gvmi_cache {
            let cache = st
                .cross_caches
                .entry(tenant)
                .or_insert_with(|| fresh_cross_cache(self.cfg, world));
            let evicted = cache.insert(src_rank, addr.0, len, (mkey, mkey2));
            if evicted.is_some() {
                self.ctx.emit(&ProtoEvent::CacheEvicted {
                    rank: src_rank,
                    side: CacheSide::DpuCross,
                });
            }
        }
        Some(mkey2)
    }

    /// Report queue depths right after an enqueue, so a sink tracking
    /// high-water marks sees every local maximum.
    fn emit_queue_depth(&self, st: &ProxyState) {
        self.ctx.emit(&ProtoEvent::ProxyQueueDepth {
            send_depth: st.send_q_len,
            recv_depth: st.recv_q_len,
        });
    }

    /// Record the first stall at a barrier crossing `(key, gen, cursor)`;
    /// repeat polls of the same blocked barrier are not new stalls.
    fn note_barrier_stall(&self, st: &mut ProxyState, key: GroupKey, gen: u64, cursor: usize) {
        if st.stalled.insert((key, gen, cursor)) {
            self.ctx.stat_incr("offload.proxy.barrier_stalls", 1);
            self.ctx.emit(&ProtoEvent::BarrierStall {
                host_rank: key.host_rank,
                req_id: key.req_id,
                gen,
            });
        }
    }

    fn next_wrid(&self, st: &mut ProxyState) -> u64 {
        st.next_wr += 1;
        WRID_OFF_PROXY | st.next_wr
    }

    fn on_cqe(&self, st: &mut ProxyState, wrid: u64) {
        crate::profile_scope!("cq_poll");
        let Some(completion) = st.inflight.remove(&wrid) else {
            // CQE of a write posted before a crash: the restarted proxy
            // does not know it. The transfer itself is re-driven by the
            // host's post-restart replay, so just account for it. (No
            // WriteCompleted event either — the restart wiped the posted
            // side from the checker's books.)
            self.ctx.stat_incr("offload.proxy.stale_cqe", 1);
            self.ctx.emit(&ProtoEvent::StaleCqe { wrid });
            return;
        };
        self.ctx.emit(&ProtoEvent::WriteCompleted { wrid });
        // End-to-end integrity gate (payload-fault plans only): verify
        // the landed bytes against the sender's CRC before acting on the
        // completion. A mismatch schedules a bounded retransmission
        // instead — no FIN, no staging forward, no barrier progress.
        if let Some(wctx) = st.inflight_ctx.remove(&wrid) {
            crate::profile_scope!("crc_verify");
            let (ep, addr, _) = if wctx.is_read {
                wctx.local
            } else {
                wctx.remote
            };
            let got = self
                .cluster
                .fabric()
                .crc32(ep, addr, wctx.len)
                .expect("CRC of a landed payload");
            if got != wctx.crc {
                self.on_corrupt(st, wctx, completion);
                return;
            }
            if wctx.attempt > 1 {
                self.ctx.stat_incr("offload.integrity.recovered", 1);
                self.ctx.emit(&ProtoEvent::PayloadRecovered {
                    msg_id: wctx.msg_id,
                    attempts: wctx.attempt,
                });
                // A retried payload made it through: the peer earns its
                // data retry-budget tokens back.
                st.health
                    .credit_data(Self::completion_src_rank(&completion));
            }
        }
        self.complete(st, wrid, completion);
    }

    /// Act on a (verified) completed operation.
    fn complete(&self, st: &mut ProxyState, wrid: u64, completion: Completion) {
        match completion {
            Completion::BasicPair {
                src_rank,
                src_req,
                dst_rank,
                dst_req,
                src_msg_id,
                dst_msg_id,
                staged,
            } => {
                self.release_staged(st, self.cfg.tenant_of(src_rank), staged);
                // FIN packets to both hosts (paper Fig. 8, §VIII-C: two of
                // the four per-transfer control messages). One-sided puts
                // ride this path with no receive request: only the origin
                // is notified. The journal write precedes the (losable)
                // FIN sends: write-ahead, so a replay after a crash at any
                // point from here on resolves to a FIN resend.
                st.completed_msgs.insert(src_msg_id, wrid);
                if dst_req != usize::MAX {
                    st.completed_msgs.insert(dst_msg_id, wrid);
                }
                self.truncate_journal(st);
                let credit = self.fin_credit(st, src_rank);
                self.send_ctrl(
                    st,
                    self.cluster.host_ep(src_rank),
                    CtrlMsg::FinSend {
                        req: src_req,
                        msg_id: src_msg_id,
                        credit,
                    },
                );
                self.ctx.emit(&ProtoEvent::FinSent {
                    rank: src_rank,
                    req: src_req,
                    wrid,
                    kind: crate::events::FinKind::Send,
                    msg_id: src_msg_id,
                });
                self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
                if dst_req != usize::MAX {
                    if self.cfg.fault.drop_first_fin && !st.fin_dropped {
                        // Deliberate fault: lose this FinRecv. The waiting
                        // receiver never completes, so the run deadlocks.
                        st.fin_dropped = true;
                        return;
                    }
                    let credit = self.fin_credit(st, dst_rank);
                    self.send_ctrl(
                        st,
                        self.cluster.host_ep(dst_rank),
                        CtrlMsg::FinRecv {
                            req: dst_req,
                            msg_id: dst_msg_id,
                            credit,
                        },
                    );
                    self.ctx.emit(&ProtoEvent::FinSent {
                        rank: dst_rank,
                        req: dst_req,
                        wrid,
                        kind: crate::events::FinKind::Recv,
                        msg_id: dst_msg_id,
                    });
                    self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
                }
            }
            Completion::OneSided {
                src_rank,
                src_req,
                msg_id,
            } => {
                st.completed_msgs.insert(msg_id, wrid);
                self.truncate_journal(st);
                let credit = self.fin_credit(st, src_rank);
                self.send_ctrl(
                    st,
                    self.cluster.host_ep(src_rank),
                    CtrlMsg::FinSend {
                        req: src_req,
                        msg_id,
                        credit,
                    },
                );
                self.ctx.emit(&ProtoEvent::FinSent {
                    rank: src_rank,
                    req: src_req,
                    wrid,
                    kind: crate::events::FinKind::Send,
                    msg_id,
                });
                self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
            }
            Completion::StagingRead { pair, buf } => {
                let (rts, rtr) = *pair;
                // Hop 1 landed clean: a staging success for the breaker
                // window (and the verdict of a staging probe, if this
                // read was one).
                self.note_breaker(st, rts.src_rank, HealthPath::Staging, true);
                self.post_staged_pair(st, rts, rtr, buf);
            }
            Completion::GroupSend { key, gen } => {
                if let Some(inst) = st
                    .instances
                    .iter_mut()
                    .find(|i| i.key == key && i.gen == gen)
                {
                    inst.outstanding -= 1;
                }
            }
            Completion::GroupStageRead {
                key,
                gen,
                entry_idx,
            } => {
                st.group_staged.insert((key, gen, entry_idx));
            }
        }
    }

    /// The rank whose breaker and retry budget a completion's data
    /// movement is charged to (the transfer's source side).
    fn completion_src_rank(completion: &Completion) -> usize {
        match completion {
            Completion::BasicPair { src_rank, .. } | Completion::OneSided { src_rank, .. } => {
                *src_rank
            }
            Completion::StagingRead { pair, .. } => pair.0.src_rank,
            Completion::GroupSend { key, .. } | Completion::GroupStageRead { key, .. } => {
                key.host_rank
            }
        }
    }

    /// A landed payload failed CRC verification. Within budget: arm a
    /// backoff timer and park the operation for re-posting. Attempt
    /// bound hit, or the peer's data retry budget dry: surface a typed
    /// data-plane failure to the owning host(s) — never a FIN, never a
    /// hang.
    fn on_corrupt(&self, st: &mut ProxyState, mut wctx: WriteCtx, completion: Completion) {
        self.ctx.stat_incr("offload.integrity.corrupt", 1);
        self.ctx.emit(&ProtoEvent::PayloadCorrupt {
            msg_id: wctx.msg_id,
            attempt: wctx.attempt,
        });
        let peer = Self::completion_src_rank(&completion);
        let path_class = match wctx.path {
            PathKind::CrossGvmi => HealthPath::CrossGvmi,
            _ => HealthPath::Staging,
        };
        self.note_breaker(st, peer, path_class, false);
        if wctx.attempt >= self.cfg.data_retx_max {
            self.ctx.stat_incr("offload.integrity.failures", 1);
            self.ctx.emit(&ProtoEvent::DataIntegrityFailed {
                msg_id: wctx.msg_id,
                attempts: wctx.attempt,
            });
            self.fail_transfer(st, completion, wctx.attempt, None);
            return;
        }
        if !st.health.try_spend_data(peer) {
            self.fail_transfer(st, completion, wctx.attempt, Some(path_class));
            return;
        }
        let delay = backoff_delay_from(self.cfg.retx_base, self.cfg.retx_cap, wctx.attempt);
        wctx.attempt += 1;
        st.next_retx_token += 1;
        let token = st.next_retx_token;
        st.data_retx.insert(token, (wctx, completion));
        self.ctx.stat_incr("offload.integrity.retransmits", 1);
        self.ctx.deliver_self(
            delay,
            Box::new(NetMsg::Notify(Box::new(CtrlMsg::DataRetxTick { token }))),
        );
    }

    /// Re-post a corrupt operation after its backoff (fresh wrid, same
    /// path, same arrival notification — receivers dedup by msg_id).
    fn repost(&self, st: &mut ProxyState, wctx: WriteCtx, completion: Completion) {
        let wr = self.next_wrid(st);
        self.ctx.emit(&ProtoEvent::WritePosted {
            wrid: wr,
            bytes: wctx.len,
            path: wctx.path,
            msg_id: wctx.msg_id,
        });
        let fab = self.cluster.fabric();
        if wctx.is_read {
            fab.rdma_read(
                self.ctx,
                self.my_ep,
                wctx.local,
                wctx.remote,
                wctx.len,
                Some(wr),
            )
            .expect("data retransmit read");
        } else {
            let notify = wctx
                .notify
                .clone()
                .map(|(pid, msg)| (pid, Box::new(msg) as Payload));
            fab.rdma_write(
                self.ctx,
                self.my_ep,
                wctx.local,
                wctx.remote,
                wctx.len,
                Some(wr),
                notify,
            )
            .expect("data retransmit write");
        }
        st.inflight.insert(wr, completion);
        st.inflight_ctx.insert(wr, wctx);
    }

    /// Permanent data-plane failure: tell every host waiting on this
    /// operation, with the typed error message its engine maps to
    /// `OffloadError::DataIntegrity` (basic) or a failed generation
    /// (group). Group bookkeeping for the dead generation is dropped so
    /// the proxy still quiesces. `shed` marks a health-engine
    /// retry-budget shed (rather than an exhausted attempt bound): the
    /// `DataError` carries the shed flag so hosts surface
    /// [`crate::OffloadError::RetryBudgetExhausted`], and a
    /// `RetryBudgetExhausted` event is emitted per failed basic request
    /// so the checker can pair each shed with its `ReqFailed`. (Group
    /// sheds ride `GroupDataError` and emit no shed event — the whole
    /// generation fails through `GroupFailed`.)
    fn fail_transfer(
        &self,
        st: &mut ProxyState,
        completion: Completion,
        attempts: u32,
        shed: Option<HealthPath>,
    ) {
        let is_shed = shed.is_some();
        if is_shed {
            self.ctx.stat_incr("offload.health.retry_budget_sheds", 1);
        }
        let note_shed = |rank: usize, msg_id: u64| {
            if let Some(path) = shed {
                self.ctx
                    .emit(&ProtoEvent::RetryBudgetExhausted { rank, msg_id, path });
            }
        };
        match completion {
            Completion::BasicPair {
                src_rank,
                src_req,
                dst_rank,
                dst_req,
                src_msg_id,
                dst_msg_id,
                staged,
            } => {
                self.release_staged(st, self.cfg.tenant_of(src_rank), staged);
                note_shed(src_rank, src_msg_id);
                self.send_ctrl(
                    st,
                    self.cluster.host_ep(src_rank),
                    CtrlMsg::DataError {
                        req: src_req,
                        msg_id: src_msg_id,
                        attempts,
                        shed: is_shed,
                    },
                );
                self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
                if dst_req != usize::MAX {
                    note_shed(dst_rank, dst_msg_id);
                    self.send_ctrl(
                        st,
                        self.cluster.host_ep(dst_rank),
                        CtrlMsg::DataError {
                            req: dst_req,
                            msg_id: dst_msg_id,
                            attempts,
                            shed: is_shed,
                        },
                    );
                    self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
                }
            }
            Completion::OneSided {
                src_rank,
                src_req,
                msg_id,
            } => {
                note_shed(src_rank, msg_id);
                self.send_ctrl(
                    st,
                    self.cluster.host_ep(src_rank),
                    CtrlMsg::DataError {
                        req: src_req,
                        msg_id,
                        attempts,
                        shed: is_shed,
                    },
                );
                self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
            }
            Completion::StagingRead { pair, buf } => {
                let (rts, rtr) = *pair;
                self.release_staged(st, rts.tenant, Some((buf.0, buf.1, rts.len)));
                note_shed(rts.src_rank, rts.msg_id);
                self.send_ctrl(
                    st,
                    self.cluster.host_ep(rts.src_rank),
                    CtrlMsg::DataError {
                        req: rts.src_req,
                        msg_id: rts.msg_id,
                        attempts,
                        shed: is_shed,
                    },
                );
                self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
                if rtr.dst_req != usize::MAX {
                    note_shed(rtr.dst_rank, rtr.msg_id);
                    self.send_ctrl(
                        st,
                        self.cluster.host_ep(rtr.dst_rank),
                        CtrlMsg::DataError {
                            req: rtr.dst_req,
                            msg_id: rtr.msg_id,
                            attempts,
                            shed: is_shed,
                        },
                    );
                    self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
                }
            }
            Completion::GroupSend { key, gen } | Completion::GroupStageRead { key, gen, .. } => {
                self.send_ctrl(
                    st,
                    self.cluster.host_ep(key.host_rank),
                    CtrlMsg::GroupDataError {
                        req_id: key.req_id,
                        gen,
                        attempts,
                    },
                );
                self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
                for inst in st
                    .instances
                    .iter_mut()
                    .filter(|i| i.key == key && i.gen == gen)
                {
                    inst.done = true;
                }
                st.arrivals.remove(&(key, gen));
                st.stalled.retain(|&(k, g, _)| !(k == key && g == gen));
                st.group_staged.retain(|&(k, g, _)| !(k == key && g == gen));
                st.stage_read_posted
                    .retain(|&(k, g, _)| !(k == key && g == gen));
            }
        }
    }

    // ---- Group primitives (Algorithm 1) ----

    fn install_group(
        &self,
        st: &mut ProxyState,
        key: GroupKey,
        entries: Vec<WireEntry>,
        host_pid: Pid,
    ) {
        let want_staging = self.cfg.data_path == DataPath::Staging;
        // Interpret every entry once (ARM time).
        let _ = self.cluster.fabric().charge_cpu(
            self.ctx,
            self.my_ep,
            self.cfg.proxy_entry_overhead * entries.len().max(1) as u64,
        );
        let mut mkey2 = vec![None; entries.len()];
        let mut staging = vec![None; entries.len()];
        let fab = self.cluster.fabric();
        for (i, e) in entries.iter().enumerate() {
            if let WireEntry::Send {
                addr,
                len,
                mkey,
                dst_rank,
                tag,
                msg_id,
                ..
            } = e
            {
                if want_staging {
                    let buf = fab.alloc(self.my_ep, *len);
                    let k = fab
                        .reg_mr(self.ctx, self.my_ep, buf, *len)
                        .expect("group staging registration");
                    staging[i] = Some((buf, k));
                } else {
                    // Cross-registration now, stored with the entry, so
                    // execution never searches the GVMI cache (paper
                    // §VII-D). A failed cross-GVMI registration demotes
                    // just this entry to a staging buffer; an open
                    // breaker demotes it without consulting the sick
                    // path at all.
                    let peer = key.host_rank;
                    match st.health.route(peer, HealthPath::CrossGvmi) {
                        Route::FastPath => {
                            self.ctx.stat_incr("offload.health.fastpaths", 1);
                            self.ctx.emit(&ProtoEvent::BreakerFastPath {
                                peer,
                                path: HealthPath::CrossGvmi,
                                msg_id: *msg_id,
                            });
                            let buf = fab.alloc(self.my_ep, *len);
                            let k = fab
                                .reg_mr(self.ctx, self.my_ep, buf, *len)
                                .expect("fallback staging registration");
                            staging[i] = Some((buf, k));
                            continue;
                        }
                        Route::Probe => self.note_probe(peer, HealthPath::CrossGvmi, *msg_id),
                        _ => {}
                    }
                    let reg = self.try_cross_reg(st, peer, *addr, *len, *mkey);
                    self.note_breaker(st, peer, HealthPath::CrossGvmi, reg.is_some());
                    match reg {
                        Some(m2) => mkey2[i] = Some(m2),
                        None => {
                            self.note_fallback(key.host_rank, *dst_rank, *tag, *msg_id);
                            let buf = fab.alloc(self.my_ep, *len);
                            let k = fab
                                .reg_mr(self.ctx, self.my_ep, buf, *len)
                                .expect("fallback staging registration");
                            staging[i] = Some((buf, k));
                        }
                    }
                }
            }
        }
        st.groups.insert(
            key,
            CachedGroup {
                entries,
                mkey2,
                staging,
                host_pid,
            },
        );
    }

    fn start_instance(&self, st: &mut ProxyState, key: GroupKey, gen: u64) {
        assert!(
            st.groups.contains_key(&key),
            "exec for unknown group {key:?}"
        );
        if st.fin_gens.get(&key).copied().unwrap_or(0) >= gen {
            // This generation finished in a previous life; only the FIN
            // can have been lost. Resend it instead of re-executing.
            self.ctx.stat_incr("offload.reliable.fin_resends", 1);
            self.post_group_fin(st, key, gen);
            return;
        }
        if st.instances.iter().any(|i| i.key == key && i.gen == gen) {
            // Duplicate exec (a retransmit racing the host's replay):
            // at most one instance per (group, generation).
            self.ctx.stat_incr("offload.reliable.dups_dropped", 1);
            self.ctx.emit(&ProtoEvent::CtrlDuplicateDropped {
                at_proxy: true,
                kind: CtrlKind::GroupExec,
                msg_id: 0,
            });
            return;
        }
        st.instances.push(Instance {
            key,
            gen,
            cursor: 0,
            outstanding: 0,
            barriers: 0,
            send_set: BTreeSet::new(),
            barrier_written: false,
            done: false,
        });
        let idx = st.instances.len() - 1;
        self.advance_instance(st, idx);
    }

    /// Ship a generation's completion to the owning host. Group FINs
    /// aggregate many writes, so no single completed wrid names them;
    /// allocate a fresh id from the proxy's work-request namespace
    /// instead of the old colliding 0 sentinel, so every FIN in a trace
    /// is uniquely attributable.
    fn post_group_fin(&self, st: &mut ProxyState, key: GroupKey, gen: u64) {
        self.send_ctrl(
            st,
            self.cluster.host_ep(key.host_rank),
            CtrlMsg::GroupFin {
                req_id: key.req_id,
                gen,
            },
        );
        let fin_id = self.next_wrid(st);
        self.ctx.emit(&ProtoEvent::FinSent {
            rank: key.host_rank,
            req: key.req_id,
            wrid: fin_id,
            kind: crate::events::FinKind::Group,
            msg_id: 0,
        });
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
    }

    fn advance_all(&self, st: &mut ProxyState) {
        for i in 0..st.instances.len() {
            if !st.instances[i].done {
                self.advance_instance(st, i);
            }
        }
        st.instances.retain(|i| !i.done);
    }

    /// Run one instance forward until it blocks or completes — the
    /// `PostCachedEntryOps` loop of Algorithm 1.
    fn advance_instance(&self, st: &mut ProxyState, idx: usize) {
        loop {
            let (key, gen, cursor) = {
                let inst = &st.instances[idx];
                (inst.key, inst.gen, inst.cursor)
            };
            let n_entries = st.groups[&key].entries.len();
            if cursor >= n_entries {
                // End of the queue: completion needs all sends CQE'd and
                // all recv payloads arrived.
                if st.instances[idx].outstanding > 0 {
                    self.ctx.trace(format!(
                        "proxy.wait_cqes.r{}.out{}",
                        key.host_rank, st.instances[idx].outstanding
                    ));
                    return;
                }
                if !self.recvs_arrived(st, key, gen, n_entries) {
                    self.ctx
                        .trace(format!("proxy.wait_arrivals.r{}", key.host_rank));
                    return;
                }
                let host_pid = st.groups[&key].host_pid;
                let _ = host_pid;
                // Journal the finished generation (write-ahead of the
                // losable FIN), then ship the FIN.
                let fin_gen = st.fin_gens.entry(key).or_insert(0);
                *fin_gen = (*fin_gen).max(gen);
                self.post_group_fin(st, key, gen);
                self.ctx
                    .trace(format!("proxy.group_fin.r{}.g{gen}", key.host_rank));
                st.arrivals.remove(&(key, gen));
                st.stalled.retain(|&(k, g, _)| !(k == key && g == gen));
                st.instances[idx].done = true;
                return;
            }
            let entry = st.groups[&key].entries[cursor].clone();
            match entry {
                WireEntry::Send {
                    addr,
                    len,
                    dst_rank,
                    tag,
                    dst_addr,
                    dst_rkey,
                    dst_req_id,
                    msg_id,
                    crc,
                    ..
                } => {
                    let staging = st.groups[&key].staging[cursor];
                    let mkey2 = st.groups[&key].mkey2[cursor];
                    if let Some((buf, bkey)) = staging {
                        if !st.group_staged.remove(&(key, gen, cursor)) {
                            // Staging hop 1: pull the (current generation's)
                            // payload from host memory, once per entry/gen.
                            if st.stage_read_posted.insert((key, gen, cursor)) {
                                let entry_src_rkey = match &st.groups[&key].entries[cursor] {
                                    WireEntry::Send { src_rkey, .. } => *src_rkey,
                                    _ => unreachable!("send entry"),
                                };
                                let _ = self.cluster.fabric().charge_cpu(
                                    self.ctx,
                                    self.my_ep,
                                    self.cfg.proxy_entry_overhead,
                                );
                                let wr = self.next_wrid(st);
                                self.ctx.emit(&ProtoEvent::WritePosted {
                                    wrid: wr,
                                    bytes: len,
                                    path: PathKind::StagingHop1,
                                    msg_id,
                                });
                                if let Some(c) = crc {
                                    st.inflight_ctx.insert(
                                        wr,
                                        WriteCtx {
                                            crc: c,
                                            msg_id,
                                            path: PathKind::StagingHop1,
                                            is_read: true,
                                            local: (self.my_ep, buf, bkey),
                                            remote: (
                                                self.cluster.host_ep(key.host_rank),
                                                addr,
                                                entry_src_rkey,
                                            ),
                                            len,
                                            attempt: 1,
                                            notify: None,
                                        },
                                    );
                                }
                                st.inflight.insert(
                                    wr,
                                    Completion::GroupStageRead {
                                        key,
                                        gen,
                                        entry_idx: cursor,
                                    },
                                );
                                self.cluster
                                    .fabric()
                                    .rdma_read(
                                        self.ctx,
                                        self.my_ep,
                                        (self.my_ep, buf, bkey),
                                        (self.cluster.host_ep(key.host_rank), addr, entry_src_rkey),
                                        len,
                                        Some(wr),
                                    )
                                    .expect("group staging read");
                                self.ctx.stat_incr("offload.proxy.staging_reads", 1);
                            }
                            return; // payload not in DPU memory yet
                        }
                        st.stage_read_posted.remove(&(key, gen, cursor));
                    }
                    let _ = self.cluster.fabric().charge_cpu(
                        self.ctx,
                        self.my_ep,
                        self.cfg.proxy_entry_overhead,
                    );
                    let wr = self.next_wrid(st);
                    st.inflight.insert(wr, Completion::GroupSend { key, gen });
                    let dst_proxy_pid = self
                        .cluster
                        .fabric()
                        .pid_of(self.cluster.proxy_for_rank(dst_rank));
                    let arrival = CtrlMsg::GroupArrival {
                        src_rank: key.host_rank,
                        tag,
                        dst_key: GroupKey {
                            host_rank: dst_rank,
                            req_id: dst_req_id,
                        },
                        gen,
                        msg_id,
                    };
                    let local = match staging {
                        Some((buf, k)) => (self.my_ep, buf, k),
                        None => {
                            let m2 = mkey2.expect("GVMI entries are cross-registered");
                            self.ctx.emit(&ProtoEvent::Mkey2Used { mkey2: m2 });
                            (self.cluster.host_ep(key.host_rank), addr, m2)
                        }
                    };
                    self.ctx.emit(&ProtoEvent::WritePosted {
                        wrid: wr,
                        bytes: len,
                        path: if staging.is_some() {
                            PathKind::StagingHop2
                        } else {
                            PathKind::CrossGvmi
                        },
                        msg_id,
                    });
                    // Group integrity: the CRC is a wire-build-time
                    // snapshot (documented relaxation — a host that
                    // rewrites a send buffer between generations must
                    // rebuild the group).
                    if let Some(c) = crc {
                        st.inflight_ctx.insert(
                            wr,
                            WriteCtx {
                                crc: c,
                                msg_id,
                                path: if staging.is_some() {
                                    PathKind::StagingHop2
                                } else {
                                    PathKind::CrossGvmi
                                },
                                is_read: false,
                                local,
                                remote: (self.cluster.host_ep(dst_rank), dst_addr, dst_rkey),
                                len,
                                attempt: 1,
                                notify: Some((dst_proxy_pid, arrival.clone())),
                            },
                        );
                    }
                    self.cluster
                        .fabric()
                        .rdma_write(
                            self.ctx,
                            self.my_ep,
                            local,
                            (self.cluster.host_ep(dst_rank), dst_addr, dst_rkey),
                            len,
                            Some(wr),
                            Some((dst_proxy_pid, Box::new(arrival))),
                        )
                        .expect("group data write");
                    self.ctx.stat_incr("offload.proxy.group_writes", 1);
                    let inst = &mut st.instances[idx];
                    inst.outstanding += 1;
                    inst.send_set.insert((dst_rank, dst_req_id));
                    inst.cursor += 1;
                }
                WireEntry::Recv { .. } => {
                    st.instances[idx].cursor += 1;
                }
                WireEntry::Barrier => {
                    if st.instances[idx].outstanding > 0 {
                        self.note_barrier_stall(st, key, gen, cursor);
                        return; // wait for send completions
                    }
                    if !st.instances[idx].barrier_written {
                        // writeRemoteBarrierCntr(sendRankSet) — Algorithm 1.
                        let (value, targets) = {
                            let inst = &mut st.instances[idx];
                            inst.barriers += 1;
                            inst.barrier_written = true;
                            let t: Vec<_> = inst.send_set.iter().copied().collect();
                            inst.send_set.clear();
                            (inst.barriers, t)
                        };
                        for (dst_rank, dst_req_id) in targets {
                            let dst_proxy = self.cluster.proxy_for_rank(dst_rank);
                            self.cluster
                                .fabric()
                                .send_packet(
                                    self.ctx,
                                    self.my_ep,
                                    dst_proxy,
                                    self.cfg.ctrl_bytes,
                                    Box::new(CtrlMsg::BarrierCntr {
                                        src_rank: key.host_rank,
                                        dst_key: GroupKey {
                                            host_rank: dst_rank,
                                            req_id: dst_req_id,
                                        },
                                        gen,
                                        value,
                                    }),
                                )
                                .expect("barrier counter write");
                            self.ctx.emit(&ProtoEvent::BarrierCntr {
                                src_rank: key.host_rank,
                                dst_host_rank: dst_rank,
                                dst_req_id,
                                gen,
                                value,
                            });
                        }
                    }
                    // Gate on pre-barrier receive arrivals.
                    if !self.recvs_arrived(st, key, gen, cursor) {
                        self.note_barrier_stall(st, key, gen, cursor);
                        return;
                    }
                    let inst = &mut st.instances[idx];
                    inst.barrier_written = false;
                    inst.cursor += 1;
                }
            }
        }
    }

    /// Have all `Recv` entries with index `< upto` received their payload?
    fn recvs_arrived(&self, st: &ProxyState, key: GroupKey, gen: u64, upto: usize) -> bool {
        let entries = &st.groups[&key].entries;
        let mut needed: BTreeMap<(usize, u64), u64> = BTreeMap::new();
        for e in entries.iter().take(upto) {
            if let WireEntry::Recv { src_rank, tag } = e {
                *needed.entry((*src_rank, *tag)).or_insert(0) += 1;
            }
        }
        if needed.is_empty() {
            return true;
        }
        let got = st.arrivals.get(&(key, gen));
        needed
            .iter()
            .all(|(k, need)| got.and_then(|m| m.get(k)).map_or(0, |s| s.len() as u64) >= *need)
    }
}
