//! Host-side API of the offload framework: the paper's Basic and Group
//! primitives (Listings 2 and 4).
//!
//! ```text
//! Init_Offload()            -> Offload::init
//! Send_Offload(...)         -> Offload::send_offload
//! Recv_Offload(...)         -> Offload::recv_offload
//! Wait(&req)                -> Offload::wait
//! Finalize_Offload()        -> Offload::finalize
//!
//! Group_Offload_start(&req) -> Offload::group_start
//! Send_Goffload(...)        -> GroupRequest::send  (via Offload::group_send)
//! Recv_Goffload(...)        -> Offload::group_recv
//! Local_barrier_Goffload    -> Offload::group_barrier
//! Group_Offload_end         -> Offload::group_end
//! Group_Offload_call        -> Offload::group_call
//! Group_Wait                -> Offload::group_wait
//! ```

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rdma::{Channel, ClusterCtx, EpId, Inbox, MrKey, NetMsg, VAddr};
use simnet::{ProcessCtx, SimDelta};

use crate::config::{DataPath, OffloadConfig, TenantId};
use crate::drr::{Deferred, DrrScheduler};
use crate::events::{
    CacheOutcome, CacheSide, CtrlKind, HealthPath, HostCacheKind, ProtoEvent, ReqDir,
};
use crate::messages::{CtrlMsg, GroupKey, WireEntry, WRID_MASK, WRID_OFF_HOST};
use crate::reg_cache::RankAddrCache;
use crate::reliable::{backoff_delay_from, OffloadError, ReliableLink, ReqOrigin, TickOutcome};

/// Handle of a Basic-primitive transfer (`OffloadRequest` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OffloadReq(usize);

impl OffloadReq {
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// Handle of a recorded group pattern (`OffloadGroupRequest` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GroupRequest(usize);

/// `DeadlineTick.req` values at or above this mark group deadlines; the
/// group request id is `req - GROUP_DEADLINE_BASE`. Basic slots are
/// `Vec` indices and can never reach this.
const GROUP_DEADLINE_BASE: usize = 1 << 48;

/// One recorded group operation.
#[derive(Clone, Debug)]
enum GroupOp {
    Send {
        addr: VAddr,
        len: u64,
        dst: usize,
        tag: u64,
    },
    Recv {
        addr: VAddr,
        len: u64,
        src: usize,
        tag: u64,
    },
    Barrier,
}

struct GroupState {
    ops: Vec<GroupOp>,
    ended: bool,
    gen: u64,
    fin_gen: u64,
    /// Wire entries built during the first call (metadata gather done).
    wire: Option<Vec<WireEntry>>,
    /// Proxy already holds the metadata (group cache is warm).
    proxy_cached: bool,
    /// Terminal failure of the in-flight generation: a group ctrl
    /// message was abandoned, a group entry exhausted its data-path
    /// retransmission budget, or a group deadline expired.
    error: Option<OffloadError>,
}

/// One receive-metadata entry: `(tag, buffer, rkey)`.
type MetaEntry = (u64, VAddr, MrKey);

/// Metadata received from one receiving host, consumed FIFO per source:
/// `(dst_req_id, entries)`.
struct MetaQueue {
    queue: VecDeque<(usize, Vec<MetaEntry>)>,
}

/// One basic-request slot: completion flag plus the stable transfer id
/// assigned at post time (threads the causal timeline through the event
/// stream).
struct ReqSlot {
    done: bool,
    msg_id: u64,
    /// Terminal failure: ctrl abandonment, data-integrity exhaustion,
    /// deadline expiry, or an application cancel.
    error: Option<OffloadError>,
    /// Destination and ctrl message kept for replay after a proxy
    /// restart. Populated only when the fault plan can crash proxies.
    replay: Option<(EpId, CtrlMsg)>,
    /// Endpoint the request was posted to (cancel routing). `None`
    /// while the post is still deferred by the credit window.
    target: Option<EpId>,
    /// Original post kept for deferred admission and `QueueFull`
    /// re-posts. Populated only when the queue cap is armed.
    post: Option<(EpId, u64, CtrlMsg)>,
    /// Endpoint index currently charged one credit for this request.
    window_ep: Option<usize>,
    /// Backpressure re-post attempts (paces the retry backoff).
    attempts: u32,
    /// GVMI-cache entry pinned while this request is in flight
    /// (`(proxy_idx, addr, len)`); set only under a cache budget.
    pin: Option<(usize, u64, u64)>,
}

struct HostState {
    reqs: Vec<ReqSlot>,
    /// Monotone per-rank sequence feeding `msg_id` allocation (basic
    /// requests and group wire entries share the namespace).
    next_msg_seq: u64,
    /// Host-side GVMI cache, indexed by the mapped proxy's local index.
    gvmi_cache: RankAddrCache<MrKey>,
    /// Host-side IB cache (receive buffers).
    ib_cache: RankAddrCache<MrKey>,
    groups: Vec<GroupState>,
    /// Order-stable on purpose: message matching must never depend on
    /// hash-iteration order (see `xtask lint`).
    metas_from: BTreeMap<usize, MetaQueue>,
    /// Reliable ctrl-plane endpoint (seq/ack/retransmit/dedup). Inert
    /// unless the fault plan arms it.
    rel: ReliableLink,
    /// Last restart epoch observed per proxy endpoint index; a higher
    /// epoch in a `ProxyRestarted` notice triggers recovery.
    proxy_epochs: BTreeMap<usize, u64>,
    /// Outstanding admitted basic posts per target endpoint index
    /// (credit window; maintained when the queue cap or this rank's
    /// tenant soft quota is armed).
    window: BTreeMap<usize, usize>,
    /// Request slots waiting for a credit, deficit-round-robin across
    /// tenants (exactly the PR-5 FIFO when a single tenant is armed).
    deferred: DrrScheduler,
    /// Basic requests posted and not yet terminally settled (hard-quota
    /// accounting; cheap enough to maintain unconditionally).
    live_basic: usize,
    /// Completed (or terminally failed) sequence numbers not yet folded
    /// into `ack_horizon` (journal-truncation tracking; maintained only
    /// when the journal cap is armed).
    completed_seqs: BTreeSet<u64>,
    /// Highest seq such that every seq up to and including it has
    /// completed; piggybacked on RTS/RTR so proxies can truncate their
    /// FIN journals.
    ack_horizon: u64,
}

/// Host-side engine of the offload framework. One per application rank.
pub struct Offload {
    ctx: ProcessCtx,
    cluster: ClusterCtx,
    rank: usize,
    tenant: TenantId,
    ep: EpId,
    proxy_ep: EpId,
    proxy_idx: usize,
    cfg: OffloadConfig,
    chan: Channel,
    st: RefCell<HostState>,
}

impl Offload {
    /// `Init_Offload()`: attach this rank to the framework. The cluster
    /// must have been built with proxies running
    /// [`crate::proxy::proxy_main`] and the *same* [`OffloadConfig`].
    ///
    /// The GVMI-ID exchange the paper performs here (once per protection
    /// domain) is modelled by the fabric assigning each proxy its GVMI at
    /// endpoint creation; the exchange itself is a one-time O(µs) cost we
    /// fold into startup.
    pub fn init(
        rank: usize,
        ctx: ProcessCtx,
        cluster: ClusterCtx,
        inbox: &Inbox,
        cfg: OffloadConfig,
    ) -> Offload {
        assert!(
            cluster.proxies_per_dpu() > 0,
            "offload requires DPU proxies; build the cluster with proxy_main"
        );
        let chan = inbox.channel(|m| match m {
            NetMsg::Packet(p) => p.body.is::<CtrlMsg>(),
            NetMsg::Notify(p) => p.is::<CtrlMsg>(),
            NetMsg::Cqe(c) => c.wrid & WRID_MASK == WRID_OFF_HOST,
        });
        let ep = cluster.host_ep(rank);
        let proxy_ep = cluster.proxy_for_rank(rank);
        let proxy_idx = rank % cluster.proxies_per_dpu();
        let n_proxies = cluster.proxies_per_dpu();
        let (fault, ctrl_bytes) = (cfg.fault, cfg.ctrl_bytes);
        // Hosts arm the ctrl retry budget (shed-and-surface is a typed
        // request failure here); proxies never do — see
        // [`OffloadConfig::ctrl_knobs`].
        let knobs = cfg.ctrl_knobs(true);
        let cache_budget = cfg.cache_budget;
        // Arm the fabric's data-plane fault stream (set-once: the first
        // rank's plan wins, later inits are no-ops). Unarmed plans leave
        // the fabric untouched, so clean runs stay byte-identical.
        if fault.payload_faults() {
            cluster.fabric().set_payload_faults(rdma::PayloadFaultPlan {
                flip_pm: fault.flip_pm,
                torn_pm: fault.torn_pm,
                drop_pm: fault.data_drop_pm,
                seed: fault.seed,
            });
        }
        let tenant = cfg.tenant_of(rank);
        Offload {
            ctx,
            cluster,
            rank,
            tenant,
            ep,
            proxy_ep,
            proxy_idx,
            cfg,
            chan,
            st: RefCell::new(HostState {
                reqs: Vec::new(),
                next_msg_seq: 0,
                gvmi_cache: if cache_budget > 0 {
                    RankAddrCache::with_capacity(n_proxies, cache_budget)
                } else {
                    RankAddrCache::new(n_proxies)
                },
                ib_cache: RankAddrCache::new(1),
                groups: Vec::new(),
                metas_from: BTreeMap::new(),
                rel: ReliableLink::new(fault, knobs, ctrl_bytes, false, ep),
                proxy_epochs: BTreeMap::new(),
                window: BTreeMap::new(),
                deferred: DrrScheduler::default(),
                live_basic: 0,
                completed_seqs: BTreeSet::new(),
                ack_horizon: 0,
            }),
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The tenant this rank is attributed to (0 unless the config arms
    /// a multi-tenant roster; see [`OffloadConfig::tenant_of`]).
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.cluster.world_size()
    }

    /// Process context (compute, tracing).
    pub fn ctx(&self) -> &ProcessCtx {
        &self.ctx
    }

    /// The cluster roster.
    pub fn cluster(&self) -> &ClusterCtx {
        &self.cluster
    }

    /// The configuration this engine was initialized with.
    pub fn config(&self) -> &OffloadConfig {
        &self.cfg
    }

    /// Allocate a fresh basic-request slot and its transfer id
    /// (crate-internal extensions).
    pub(crate) fn new_basic_req(&self) -> (OffloadReq, u64) {
        let (req, msg_id) = self.new_req();
        (OffloadReq(req), msg_id)
    }

    /// Ship a control message to this rank's mapped proxy
    /// (crate-internal extensions). `req` ties the message to a basic
    /// request slot for replay-after-restart and abandonment errors.
    pub(crate) fn send_ctrl_to_proxy(&self, msg: CtrlMsg, req: Option<usize>) {
        let origin = match req {
            Some(r) => ReqOrigin::Basic(r),
            None => ReqOrigin::Free,
        };
        self.post_ctrl(self.proxy_ep, self.cfg.ctrl_bytes, msg, origin);
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
    }

    /// Ship one ctrl message: through the reliable link when the fault
    /// plan arms it, as a bare packet otherwise (byte-identical to the
    /// pre-reliability protocol on clean runs). When proxies can crash,
    /// a basic-origin message is also stored on its slot for replay.
    fn post_ctrl(&self, to: EpId, bytes: u64, msg: CtrlMsg, origin: ReqOrigin) {
        crate::profile_scope!("ctrl_encode");
        if let ReqOrigin::Basic(r) = origin {
            if self.cfg.fault.crash_at_step > 0 {
                self.st.borrow_mut().reqs[r].replay = Some((to, msg.clone()));
            }
        }
        let fab = self.cluster.fabric();
        if self.cfg.fault.reliable() {
            self.st
                .borrow_mut()
                .rel
                .send(&self.ctx, fab, to, bytes, msg, origin);
        } else {
            fab.send_packet(&self.ctx, self.ep, to, bytes, Box::new(msg))
                .expect("control message send");
        }
    }

    /// CRC32 of a posted payload, computed only when the run injects
    /// payload faults (clean runs skip the checksum entirely).
    fn payload_crc(&self, addr: VAddr, len: u64) -> Option<u32> {
        self.cfg.fault.payload_faults().then(|| {
            self.cluster
                .fabric()
                .crc32(self.ep, addr, len)
                .expect("CRC of a posted buffer")
        })
    }

    /// Completion horizon piggybacked on RTS/RTR (0 unless the journal
    /// cap is armed).
    fn horizon(&self) -> u64 {
        if self.cfg.journal_cap == 0 {
            0
        } else {
            self.st.borrow().ack_horizon
        }
    }

    /// Whether host-side admission control is live: the global queue
    /// cap, or this rank's tenant soft quota under a multi-tenant
    /// roster. Off on single-tenant uncapped runs (byte-identical to
    /// the pre-credit engine).
    fn credit_armed(&self) -> bool {
        self.cfg.queue_cap > 0
            || (self.cfg.multi_tenant() && self.cfg.tenant_soft_quota(self.tenant) > 0)
    }

    /// This rank's tenant soft quota on admitted-unfinished posts
    /// (0 = unarmed; only a multi-tenant roster arms it).
    fn soft_quota(&self) -> usize {
        if self.cfg.multi_tenant() {
            self.cfg.tenant_soft_quota(self.tenant)
        } else {
            0
        }
    }

    /// Post a basic request through the admission policy: shed
    /// immediately when the tenant is over its hard quota, deferred to
    /// the DRR scheduler when the target endpoint (or the tenant soft
    /// quota) is out of credit, admitted otherwise.
    fn post_basic(&self, req: usize, to: EpId, bytes: u64, msg: CtrlMsg) {
        if self.cfg.multi_tenant() {
            let hard = self.cfg.tenant_hard_quota(self.tenant);
            if hard > 0 {
                let (over, msg_id) = {
                    let st = self.st.borrow();
                    // `live_basic` already counts this request's slot.
                    (st.live_basic > hard, st.reqs[req].msg_id)
                };
                if over {
                    self.ctx.stat_incr("offload.quota.sheds", 1);
                    self.ctx.emit(&ProtoEvent::QuotaShed {
                        tenant: self.tenant,
                        rank: self.rank,
                        msg_id,
                    });
                    self.fail_basic(
                        req,
                        OffloadError::QuotaExceeded {
                            tenant: self.tenant,
                            msg_id,
                        },
                        0,
                    );
                    return;
                }
            }
        }
        if self.credit_armed() {
            let soft = self.soft_quota();
            let (defer, msg_id) = {
                let mut st = self.st.borrow_mut();
                st.reqs[req].post = Some((to, bytes, msg.clone()));
                let used = st.window.get(&to.index()).copied().unwrap_or(0);
                let ep_full = self.cfg.queue_cap > 0 && used >= self.cfg.queue_cap;
                let quota_full = soft > 0 && st.window.values().sum::<usize>() >= soft;
                (ep_full || quota_full, st.reqs[req].msg_id)
            };
            if defer {
                self.st.borrow_mut().deferred.push(self.tenant, req);
                self.ctx.stat_incr("offload.credit.deferrals", 1);
                self.ctx.emit(&ProtoEvent::CreditDeferred {
                    rank: self.rank,
                    msg_id,
                });
                return;
            }
        }
        self.admit_post(req, to, bytes, msg);
    }

    /// Charge a credit (when capped) and actually ship the post.
    fn admit_post(&self, req: usize, to: EpId, bytes: u64, mut msg: CtrlMsg) {
        crate::profile_scope!("credit_admission");
        // A deferred post may have waited through many completions:
        // refresh the piggybacked completion horizon so the proxy's
        // journal truncation tracks reality, not the build instant.
        // (With the journal cap unarmed, horizon() is 0 — no change.)
        if let CtrlMsg::Rts { ack_horizon, .. } | CtrlMsg::Rtr { ack_horizon, .. } = &mut msg {
            *ack_horizon = self.horizon();
        }
        {
            let mut st = self.st.borrow_mut();
            if self.credit_armed() {
                *st.window.entry(to.index()).or_insert(0) += 1;
                st.reqs[req].window_ep = Some(to.index());
            }
            st.reqs[req].target = Some(to);
        }
        self.post_ctrl(to, bytes, msg, ReqOrigin::Basic(req));
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
    }

    /// Return the credit a finished/refused request held, if any.
    fn release_window(&self, req: usize) {
        let mut st = self.st.borrow_mut();
        if let Some(ep) = st.reqs[req].window_ep.take() {
            if let Some(w) = st.window.get_mut(&ep) {
                *w = w.saturating_sub(1);
            }
        }
    }

    /// Admit up to `limit` deferred posts through the DRR scheduler.
    /// Within a tenant the queue is served FIFO and stops at the first
    /// head whose target still has no credit; across tenants a blocked
    /// head only yields that tenant's turn. With one tenant armed this
    /// is exactly the PR-5 FIFO flush.
    fn flush_deferred(&self, limit: usize) {
        if !self.credit_armed() {
            return;
        }
        let queue_cap = self.cfg.queue_cap;
        let soft = self.soft_quota();
        // Admission bookkeeping happens inside the scheduler callback
        // (under one state borrow, so the endpoint cap sees each earlier
        // grant); the granted posts themselves ship after it ends —
        // post_ctrl re-borrows state for replay and the reliable link.
        let mut granted: Vec<(usize, u64, EpId, u64, CtrlMsg)> = Vec::new();
        {
            let mut st = self.st.borrow_mut();
            let horizon = if self.cfg.journal_cap == 0 {
                0
            } else {
                st.ack_horizon
            };
            let HostState {
                reqs,
                window,
                deferred,
                ..
            } = &mut *st;
            deferred.flush(
                limit,
                |t| self.cfg.tenant_weight(t) as u64,
                |req| {
                    let slot = &mut reqs[req];
                    if slot.done || slot.error.is_some() {
                        return Deferred::Dead;
                    }
                    let Some((to, bytes, mut msg)) = slot.post.clone() else {
                        return Deferred::Dead;
                    };
                    let used = window.get(&to.index()).copied().unwrap_or(0);
                    if queue_cap > 0 && used >= queue_cap {
                        return Deferred::Blocked;
                    }
                    if soft > 0 && window.values().sum::<usize>() >= soft {
                        return Deferred::Blocked;
                    }
                    // Mirrors admit_post: refresh the piggybacked
                    // completion horizon, charge the credit, record the
                    // target for cancel routing.
                    if let CtrlMsg::Rts { ack_horizon, .. } | CtrlMsg::Rtr { ack_horizon, .. } =
                        &mut msg
                    {
                        *ack_horizon = horizon;
                    }
                    *window.entry(to.index()).or_insert(0) += 1;
                    slot.window_ep = Some(to.index());
                    slot.target = Some(to);
                    granted.push((req, slot.msg_id, to, bytes, msg));
                    Deferred::Admitted
                },
            );
        }
        for (req, msg_id, to, bytes, msg) in granted {
            crate::profile_scope!("credit_admission");
            if self.cfg.multi_tenant() {
                self.ctx.stat_incr("offload.credit.drr_grants", 1);
                self.ctx.emit(&ProtoEvent::DrrGrant {
                    tenant: self.tenant,
                    rank: self.rank,
                    msg_id,
                });
            }
            self.post_ctrl(to, bytes, msg, ReqOrigin::Basic(req));
            self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        }
    }

    /// Pin the GVMI-cache entry a request's send buffer occupies so the
    /// budgeted cache never evicts an in-flight registration.
    fn pin_gvmi(&self, req: usize, addr: VAddr, len: u64) {
        if self.cfg.cache_budget == 0 || !self.cfg.use_gvmi_cache {
            return;
        }
        let mut st = self.st.borrow_mut();
        if st.gvmi_cache.pin(self.proxy_idx, addr.0, len) {
            st.reqs[req].pin = Some((self.proxy_idx, addr.0, len));
        }
    }

    /// Drop a request's cache pin (completion or terminal failure).
    fn unpin_gvmi(&self, req: usize) {
        let mut st = self.st.borrow_mut();
        if let Some((rank, addr, len)) = st.reqs[req].pin.take() {
            st.gvmi_cache.unpin(rank, addr, len);
        }
    }

    /// Fold a terminally-settled transfer id into the ack horizon
    /// (journal-truncation tracking; no-op unless the cap is armed).
    fn note_settled(&self, msg_id: u64) {
        if self.cfg.journal_cap == 0 {
            return;
        }
        if (msg_id >> 32) as usize != self.rank {
            return;
        }
        let mut st = self.st.borrow_mut();
        st.completed_seqs.insert(msg_id & 0xFFFF_FFFF);
        let mut h = st.ack_horizon;
        while st.completed_seqs.remove(&(h + 1)) {
            h += 1;
        }
        st.ack_horizon = h;
    }

    // ---- Basic primitives ----

    /// `Send_Offload`: non-blocking offloaded send. The transfer is driven
    /// entirely by the DPU proxy; this call only registers (through the
    /// GVMI cache) and posts one RTS control message.
    pub fn send_offload(&self, addr: VAddr, len: u64, dst: usize, tag: u64) -> OffloadReq {
        assert!(dst < self.size(), "send_offload: bad destination {dst}");
        let (req, msg_id) = self.new_req();
        self.ctx.emit(&ProtoEvent::HostReqPosted {
            rank: self.rank,
            msg_id,
            peer: dst,
            tag,
            bytes: len,
            dir: ReqDir::Send,
        });
        let (mkey, src_rkey) = match self.cfg.data_path {
            // With registration failure armed, carry both keys so the
            // proxy can fall back to the staging path per message.
            DataPath::Gvmi if self.cfg.fault.fallback_enabled() => (
                Some(self.cached_gvmi_reg(addr, len)),
                Some(self.cached_ib_reg(addr, len)),
            ),
            DataPath::Gvmi => (Some(self.cached_gvmi_reg(addr, len)), None),
            // Staging: the proxy pulls the payload with an RDMA READ
            // through a plain rkey (BluesMPI-style worker read).
            DataPath::Staging => (None, Some(self.cached_ib_reg(addr, len))),
        };
        if mkey.is_some() {
            self.pin_gvmi(req, addr, len);
        }
        let msg = CtrlMsg::Rts {
            src_rank: self.rank,
            dst_rank: dst,
            tag,
            addr,
            len,
            mkey,
            src_rkey,
            src_req: req,
            src_pid: self.ctx.pid(),
            msg_id,
            crc: self.payload_crc(addr, len),
            ack_horizon: self.horizon(),
            tenant: self.tenant,
        };
        self.post_basic(req, self.proxy_ep, self.cfg.ctrl_bytes, msg);
        OffloadReq(req)
    }

    /// `Recv_Offload`: non-blocking offloaded receive. Registers the
    /// buffer (IB cache) and sends one RTR control message to the proxy
    /// *on the sender's node* — the proxy that will move the data.
    pub fn recv_offload(&self, addr: VAddr, len: u64, src: usize, tag: u64) -> OffloadReq {
        assert!(src < self.size(), "recv_offload: bad source {src}");
        let (req, msg_id) = self.new_req();
        self.ctx.emit(&ProtoEvent::HostReqPosted {
            rank: self.rank,
            msg_id,
            peer: src,
            tag,
            bytes: len,
            dir: ReqDir::Recv,
        });
        let rkey = self.cached_ib_reg(addr, len);
        let src_proxy = self.cluster.proxy_for_rank(src);
        let msg = CtrlMsg::Rtr {
            src_rank: src,
            dst_rank: self.rank,
            tag,
            addr,
            len,
            rkey,
            dst_req: req,
            dst_pid: self.ctx.pid(),
            msg_id,
            ack_horizon: self.horizon(),
            tenant: self.tenant,
        };
        self.post_basic(req, src_proxy, self.cfg.ctrl_bytes, msg);
        OffloadReq(req)
    }

    /// Has the request completed? Drains pending completions.
    pub fn test(&self, req: OffloadReq) -> bool {
        self.drain();
        self.st.borrow().reqs[req.0].done
    }

    /// `Wait`: block until `req` completes — or fails permanently, which
    /// only a fault plan can cause; check [`Offload::req_error`] then.
    pub fn wait(&self, req: OffloadReq) {
        self.drain();
        loop {
            {
                let st = self.st.borrow();
                let slot = &st.reqs[req.0];
                if slot.done || slot.error.is_some() {
                    break;
                }
            }
            let msg = self.chan.next_blocking(&self.ctx);
            self.handle(msg);
        }
    }

    /// Terminal failure of a request, if any: set when its ctrl message
    /// exhausted the reliability layer's retransmission budget. Always
    /// `None` on clean runs.
    pub fn req_error(&self, req: OffloadReq) -> Option<OffloadError> {
        self.st.borrow().reqs[req.0].error
    }

    /// `Wait` with a deadline: block until `req` completes, fails, or
    /// `timeout` simulated time elapses. On expiry the request is
    /// cancelled (the proxy is told to reap it) and
    /// [`OffloadError::DeadlineExceeded`] is returned; a cancelled
    /// request never completes afterwards.
    pub fn wait_timeout(&self, req: OffloadReq, timeout: SimDelta) -> Result<(), OffloadError> {
        self.drain();
        {
            let st = self.st.borrow();
            let slot = &st.reqs[req.0];
            if slot.done {
                return Ok(());
            }
            if let Some(e) = slot.error {
                return Err(e);
            }
        }
        self.ctx.deliver_self(
            timeout,
            Box::new(NetMsg::Notify(Box::new(CtrlMsg::DeadlineTick {
                req: req.0,
            }))),
        );
        loop {
            {
                let st = self.st.borrow();
                let slot = &st.reqs[req.0];
                if slot.done {
                    return Ok(());
                }
                if let Some(e) = slot.error {
                    return Err(e);
                }
            }
            let msg = self.chan.next_blocking(&self.ctx);
            self.handle(msg);
        }
    }

    /// Cancel an in-flight request. The slot fails with
    /// [`OffloadError::Cancelled`] and the proxy reaps any queued
    /// descriptors; a no-op when the request has already settled.
    pub fn cancel(&self, req: OffloadReq) {
        self.drain();
        let msg_id = self.st.borrow().reqs[req.0].msg_id;
        self.cancel_req(req.0, OffloadError::Cancelled { msg_id });
    }

    /// Wait for every request in `reqs`.
    pub fn wait_all(&self, reqs: &[OffloadReq]) {
        for &r in reqs {
            self.wait(r);
        }
    }

    /// `Finalize_Offload`: tell the mapped proxy this rank is done. All
    /// outstanding requests must have completed (or failed with a typed
    /// [`OffloadError`] under a fault plan).
    pub fn finalize(&self) {
        self.drain();
        {
            let st = self.st.borrow();
            assert!(
                st.reqs.iter().all(|r| r.done || r.error.is_some()),
                "finalize with incomplete basic requests"
            );
            assert!(
                st.groups
                    .iter()
                    .all(|g| g.fin_gen == g.gen || g.error.is_some()),
                "finalize with incomplete group requests"
            );
        }
        self.post_ctrl(
            self.proxy_ep,
            self.cfg.ctrl_bytes,
            CtrlMsg::Shutdown { rank: self.rank },
            ReqOrigin::Free,
        );
        // Under a lossy plan the shutdown itself needs acking (and the
        // proxy won't quiesce while we hold unacked messages): pump the
        // ctrl plane until the pending table drains. Abandonment bounds
        // this loop even against a dead peer.
        while self.st.borrow().rel.has_pending() {
            let msg = self.chan.next_blocking(&self.ctx);
            self.handle(msg);
        }
        self.ctx
            .emit(&ProtoEvent::HostFinalized { rank: self.rank });
    }

    // ---- Group primitives ----

    /// `Group_Offload_start`: begin recording a communication graph.
    pub fn group_start(&self) -> GroupRequest {
        let mut st = self.st.borrow_mut();
        st.groups.push(GroupState {
            ops: Vec::new(),
            ended: false,
            gen: 0,
            fin_gen: 0,
            wire: None,
            proxy_cached: false,
            error: None,
        });
        GroupRequest(st.groups.len() - 1)
    }

    /// `Send_Goffload`: record an offloaded send in the graph.
    pub fn group_send(&self, req: GroupRequest, addr: VAddr, len: u64, dst: usize, tag: u64) {
        assert!(dst < self.size(), "group_send: bad destination {dst}");
        let mut st = self.st.borrow_mut();
        let g = &mut st.groups[req.0];
        assert!(!g.ended, "group_send after group_end");
        g.ops.push(GroupOp::Send {
            addr,
            len,
            dst,
            tag,
        });
    }

    /// `Recv_Goffload`: record an offloaded receive in the graph.
    pub fn group_recv(&self, req: GroupRequest, addr: VAddr, len: u64, src: usize, tag: u64) {
        assert!(src < self.size(), "group_recv: bad source {src}");
        let mut st = self.st.borrow_mut();
        let g = &mut st.groups[req.0];
        assert!(!g.ended, "group_recv after group_end");
        g.ops.push(GroupOp::Recv {
            addr,
            len,
            src,
            tag,
        });
    }

    /// `Local_barrier_Goffload`: operations recorded after this point
    /// start only after everything before it has completed *on the DPU*,
    /// with no host involvement.
    pub fn group_barrier(&self, req: GroupRequest) {
        let mut st = self.st.borrow_mut();
        let g = &mut st.groups[req.0];
        assert!(!g.ended, "group_barrier after group_end");
        g.ops.push(GroupOp::Barrier);
    }

    /// `Group_Offload_end`: finish recording.
    pub fn group_end(&self, req: GroupRequest) {
        let mut st = self.st.borrow_mut();
        st.groups[req.0].ended = true;
    }

    /// `Group_Offload_call`: offload the recorded graph to the proxy. On
    /// the first call this registers all buffers, gathers receive metadata
    /// from the destination hosts, and ships the full packet; later calls
    /// hit the caches and send a single small execute message (paper
    /// §VII-D).
    pub fn group_call(&self, req: GroupRequest) {
        assert!(
            self.st.borrow().groups[req.0].ended,
            "group_call before group_end"
        );
        self.drain();
        let gen = {
            let mut st = self.st.borrow_mut();
            let g = &mut st.groups[req.0];
            g.gen += 1;
            // A fresh generation gets a fresh verdict; the previous
            // generation's failure was surfaced by its `group_wait`.
            g.error = None;
            g.gen
        };
        let need_build = self.st.borrow().groups[req.0].wire.is_none();
        if need_build {
            self.build_wire(req);
        }
        let use_cache = self.cfg.use_group_cache;
        let cached = self.st.borrow().groups[req.0].proxy_cached;
        if cached && use_cache {
            self.send_group_exec(req, gen);
        } else {
            self.send_group_packet(req, gen);
            self.st.borrow_mut().groups[req.0].proxy_cached = true;
        }
        // The overlap window (paper Figs. 12/14) opens when control
        // returns to the application.
        self.ctx.emit(&ProtoEvent::GroupCallReturned {
            host_rank: self.rank,
            req_id: req.0,
            gen,
        });
    }

    /// `Group_Wait`: block until generation `gen` (the latest call) of
    /// the group request completes on the DPU — or fails permanently
    /// (group ctrl abandonment, data-integrity exhaustion, or a group
    /// deadline), in which case the typed error is returned instead of
    /// stalling forever. Always `Ok` on clean runs.
    pub fn group_wait(&self, req: GroupRequest) -> Result<(), OffloadError> {
        self.drain();
        let gen = loop {
            {
                let st = self.st.borrow();
                let g = &st.groups[req.0];
                if g.fin_gen >= g.gen {
                    break g.gen;
                }
                if let Some(e) = g.error {
                    return Err(e);
                }
            }
            let msg = self.chan.next_blocking(&self.ctx);
            self.handle(msg);
        };
        self.ctx.emit(&ProtoEvent::GroupWaitDone {
            host_rank: self.rank,
            req_id: req.0,
            gen,
        });
        Ok(())
    }

    /// `Group_Wait` with a deadline: like [`Offload::group_wait`], but
    /// the in-flight generation is failed (and the error returned) if it
    /// has not finished after `timeout` simulated time.
    pub fn group_wait_timeout(
        &self,
        req: GroupRequest,
        timeout: SimDelta,
    ) -> Result<(), OffloadError> {
        self.drain();
        let armed = {
            let st = self.st.borrow();
            let g = &st.groups[req.0];
            g.fin_gen < g.gen && g.error.is_none()
        };
        if armed {
            self.ctx.deliver_self(
                timeout,
                Box::new(NetMsg::Notify(Box::new(CtrlMsg::DeadlineTick {
                    req: GROUP_DEADLINE_BASE + req.0,
                }))),
            );
        }
        self.group_wait(req)
    }

    /// Terminal failure of the latest group generation, if any.
    pub fn group_error(&self, req: GroupRequest) -> Option<OffloadError> {
        self.st.borrow().groups[req.0].error
    }

    /// Has the latest generation of `req` settled (completed or failed
    /// permanently)? Drains completions.
    pub fn group_test(&self, req: GroupRequest) -> bool {
        self.drain();
        let st = self.st.borrow();
        let g = &st.groups[req.0];
        g.fin_gen >= g.gen || g.error.is_some()
    }

    // ---- internals ----

    fn new_req(&self) -> (usize, u64) {
        let mut st = self.st.borrow_mut();
        st.next_msg_seq += 1;
        st.live_basic += 1;
        let msg_id = ((self.rank as u64) << 32) | st.next_msg_seq;
        st.reqs.push(ReqSlot {
            done: false,
            msg_id,
            error: None,
            replay: None,
            target: None,
            post: None,
            window_ep: None,
            attempts: 0,
            pin: None,
        });
        (st.reqs.len() - 1, msg_id)
    }

    /// Allocate a transfer id outside a request slot (group wire entries
    /// share the per-rank namespace with basic requests).
    fn alloc_msg_id(&self) -> u64 {
        let mut st = self.st.borrow_mut();
        st.next_msg_seq += 1;
        ((self.rank as u64) << 32) | st.next_msg_seq
    }

    /// Host-side GVMI registration through the array-of-BSTs cache.
    fn cached_gvmi_reg(&self, addr: VAddr, len: u64) -> MrKey {
        let fab = self.cluster.fabric();
        let gvmi = fab.gvmi_of(self.proxy_ep).expect("proxy has a GVMI");
        if self.cfg.use_gvmi_cache {
            let hit = self
                .st
                .borrow_mut()
                .gvmi_cache
                .get(self.proxy_idx, addr.0, len)
                .copied();
            self.ctx.emit(&ProtoEvent::HostCacheLookup {
                rank: self.rank,
                cache: HostCacheKind::Gvmi,
                outcome: if hit.is_some() {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Miss
                },
            });
            if let Some(k) = hit {
                self.ctx.stat_incr("offload.gvmi_cache.host.hit", 1);
                return k;
            }
            self.ctx.stat_incr("offload.gvmi_cache.host.miss", 1);
        }
        let mkey = fab
            .reg_mr_gvmi(&self.ctx, self.ep, addr, len, gvmi)
            .expect("GVMI registration of a valid buffer");
        if self.cfg.use_gvmi_cache {
            let evicted = self
                .st
                .borrow_mut()
                .gvmi_cache
                .insert(self.proxy_idx, addr.0, len, mkey);
            if evicted.is_some() {
                self.ctx.emit(&ProtoEvent::CacheEvicted {
                    rank: self.rank,
                    side: CacheSide::HostGvmi,
                });
            }
        }
        mkey
    }

    /// Host-side IB registration through the cache.
    fn cached_ib_reg(&self, addr: VAddr, len: u64) -> MrKey {
        if self.cfg.use_gvmi_cache {
            let hit = self.st.borrow_mut().ib_cache.get(0, addr.0, len).copied();
            self.ctx.emit(&ProtoEvent::HostCacheLookup {
                rank: self.rank,
                cache: HostCacheKind::Ib,
                outcome: if hit.is_some() {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Miss
                },
            });
            if let Some(k) = hit {
                self.ctx.stat_incr("offload.ib_cache.host.hit", 1);
                return k;
            }
            self.ctx.stat_incr("offload.ib_cache.host.miss", 1);
        }
        let key = self
            .cluster
            .fabric()
            .reg_mr(&self.ctx, self.ep, addr, len)
            .expect("IB registration of a valid buffer");
        if self.cfg.use_gvmi_cache {
            let evicted = self.st.borrow_mut().ib_cache.insert(0, addr.0, len, key);
            if evicted.is_some() {
                self.ctx.emit(&ProtoEvent::CacheEvicted {
                    rank: self.rank,
                    side: CacheSide::HostIb,
                });
            }
        }
        key
    }

    /// First-call phase of a group request: register everything, gather
    /// receive metadata from the peers my sends target, and build the wire
    /// entries (paper Fig. 9).
    fn build_wire(&self, req: GroupRequest) {
        let ops = self.st.borrow().groups[req.0].ops.clone();
        // Register send buffers (GVMI cache) and receive buffers (IB cache).
        let mut send_keys = Vec::new();
        let mut recv_keys = Vec::new();
        for op in &ops {
            match op {
                GroupOp::Send { addr, len, .. } => match self.cfg.data_path {
                    DataPath::Gvmi => {
                        let mkey = Some(self.cached_gvmi_reg(*addr, *len));
                        // With registration failure armed, also carry an
                        // rkey so the proxy can stage this entry instead.
                        let rkey = self
                            .cfg
                            .fault
                            .fallback_enabled()
                            .then(|| self.cached_ib_reg(*addr, *len));
                        send_keys.push((mkey, rkey))
                    }
                    DataPath::Staging => {
                        send_keys.push((None, Some(self.cached_ib_reg(*addr, *len))))
                    }
                },
                GroupOp::Recv { addr, len, .. } => {
                    recv_keys.push(self.cached_ib_reg(*addr, *len));
                    send_keys.push((None, None));
                }
                GroupOp::Barrier => send_keys.push((None, None)),
            }
        }
        // Send my receive metadata to each source rank (sorted by rank so
        // posting order — and therefore timing — is deterministic).
        let mut per_src: std::collections::BTreeMap<usize, Vec<MetaEntry>> =
            std::collections::BTreeMap::new();
        let mut rk = 0usize;
        for op in &ops {
            if let GroupOp::Recv { addr, src, tag, .. } = op {
                per_src
                    .entry(*src)
                    .or_default()
                    .push((*tag, *addr, recv_keys[rk]));
                rk += 1;
            }
        }
        for (src, entries) in per_src {
            let n = entries.len() as u64;
            self.post_ctrl(
                self.cluster.host_ep(src),
                self.cfg.ctrl_bytes + self.cfg.entry_bytes * n,
                CtrlMsg::RecvMeta {
                    dst_rank: self.rank,
                    dst_req_id: req.0,
                    entries,
                },
                ReqOrigin::Free,
            );
            self.ctx.emit(&ProtoEvent::RecvMetaSent {
                from_rank: self.rank,
                to_rank: src,
                req_id: req.0,
            });
        }
        // Gather metadata from every destination of my sends (sorted, for
        // the same determinism reason).
        let mut needed: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for op in &ops {
            if let GroupOp::Send { dst, .. } = op {
                *needed.entry(*dst).or_insert(0) += 1;
            }
        }
        let mut metas: BTreeMap<usize, (usize, VecDeque<MetaEntry>)> = BTreeMap::new();
        for (&dst, &cnt) in &needed {
            loop {
                let got = {
                    let mut st = self.st.borrow_mut();
                    st.metas_from
                        .get_mut(&dst)
                        .and_then(|q| q.queue.pop_front())
                };
                if let Some((dst_req_id, entries)) = got {
                    assert!(
                        entries.len() >= cnt,
                        "peer {dst} granted {} buffers, need {cnt}",
                        entries.len()
                    );
                    metas.insert(dst, (dst_req_id, entries.into_iter().collect()));
                    break;
                }
                let msg = self.chan.next_blocking(&self.ctx);
                self.handle(msg);
            }
        }
        // Match each send with the destination's next receive entry of the
        // same tag (paper: "matched ... based on destination rank, tag").
        let mut wire = Vec::with_capacity(ops.len());
        for (sk, op) in ops.iter().enumerate() {
            match op {
                GroupOp::Send {
                    addr,
                    len,
                    dst,
                    tag,
                } => {
                    let (dst_req_id, entries) = metas.get_mut(dst).expect("meta gathered");
                    let pos = entries
                        .iter()
                        .position(|(t, _, _)| t == tag)
                        .unwrap_or_else(|| panic!("no matching recv at {dst} for tag {tag}"));
                    let (_, dst_addr, dst_rkey) = entries.remove(pos).expect("present");
                    let (mkey, src_rkey) = send_keys[sk];
                    wire.push(WireEntry::Send {
                        addr: *addr,
                        len: *len,
                        mkey: mkey.unwrap_or(MrKey::invalid()),
                        src_rkey: src_rkey.unwrap_or(MrKey::invalid()),
                        dst_rank: *dst,
                        tag: *tag,
                        dst_addr,
                        dst_rkey,
                        dst_req_id: *dst_req_id,
                        msg_id: self.alloc_msg_id(),
                        crc: self.payload_crc(*addr, *len),
                    });
                }
                GroupOp::Recv { src, tag, .. } => {
                    wire.push(WireEntry::Recv {
                        src_rank: *src,
                        tag: *tag,
                    });
                }
                GroupOp::Barrier => wire.push(WireEntry::Barrier),
            }
        }
        self.st.borrow_mut().groups[req.0].wire = Some(wire);
    }

    fn send_group_packet(&self, req: GroupRequest, gen: u64) {
        let entries = self.st.borrow().groups[req.0]
            .wire
            .clone()
            .expect("wire built");
        let n = entries.len() as u64;
        self.post_ctrl(
            self.proxy_ep,
            self.cfg.ctrl_bytes + self.cfg.entry_bytes * n,
            CtrlMsg::GroupPacket {
                key: GroupKey {
                    host_rank: self.rank,
                    req_id: req.0,
                },
                gen,
                entries,
                host_pid: self.ctx.pid(),
            },
            ReqOrigin::Group(req.0),
        );
        self.ctx.emit(&ProtoEvent::GroupPacketSent {
            host_rank: self.rank,
            req_id: req.0,
        });
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        self.ctx.stat_incr("offload.group.packets", 1);
    }

    fn send_group_exec(&self, req: GroupRequest, gen: u64) {
        self.post_ctrl(
            self.proxy_ep,
            self.cfg.ctrl_bytes,
            CtrlMsg::GroupExec {
                key: GroupKey {
                    host_rank: self.rank,
                    req_id: req.0,
                },
                gen,
            },
            ReqOrigin::Group(req.0),
        );
        self.ctx.emit(&ProtoEvent::GroupExecSent {
            host_rank: self.rank,
            req_id: req.0,
            gen,
        });
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        self.ctx.stat_incr("offload.group.execs", 1);
    }

    /// Drain pending completions without blocking.
    fn drain(&self) {
        while let Some(msg) = self.chan.try_next(&self.ctx) {
            self.handle(msg);
        }
    }

    fn handle(&self, msg: NetMsg) {
        let decoded = match msg {
            NetMsg::Packet(p) => p.body.downcast::<CtrlMsg>().ok().map(|b| *b),
            NetMsg::Notify(b) => b.downcast::<CtrlMsg>().ok().map(|b| *b),
            NetMsg::Cqe(_) => return, // unsignaled paths only
        };
        let Some(body) = decoded else {
            // Not a control message despite the channel predicate: count
            // and drop rather than crashing the rank.
            self.ctx.stat_incr("offload.host.bad_ctrl", 1);
            self.ctx.emit(&ProtoEvent::CtrlDropped {
                at_proxy: false,
                kind: CtrlKind::Unknown,
                msg_id: 0,
            });
            return;
        };
        // Reliability plumbing first: unwrap envelopes (ack + dedup),
        // retire acks, service retransmission timers. None of these count
        // as host wakeups — they exist only under a fault plan.
        let body = match body {
            CtrlMsg::Seq {
                seq,
                from,
                from_ep,
                epoch,
                inner,
            } => {
                let fab = self.cluster.fabric();
                let accepted = self
                    .st
                    .borrow_mut()
                    .rel
                    .on_seq(&self.ctx, fab, seq, from, from_ep, epoch, *inner);
                match accepted {
                    Some(inner) => inner,
                    None => return, // duplicate
                }
            }
            CtrlMsg::Ack { seq } => {
                self.st.borrow_mut().rel.on_ack(seq);
                return;
            }
            CtrlMsg::RetxTick { seq } => {
                let fab = self.cluster.fabric();
                let outcome = self.st.borrow_mut().rel.on_tick(&self.ctx, fab, seq);
                match outcome {
                    TickOutcome::Abandoned {
                        msg_id,
                        attempts,
                        origin,
                    } => self.fail_origin(origin, msg_id, attempts),
                    // Ctrl retry budget exhausted for this peer: shed the
                    // message and surface a typed failure instead of
                    // hammering a degraded link (DESIGN.md §19).
                    TickOutcome::BudgetShed {
                        msg_id,
                        attempts,
                        origin,
                    } => {
                        self.ctx.stat_incr("offload.health.retry_budget_sheds", 1);
                        match origin {
                            ReqOrigin::Free => {}
                            ReqOrigin::Basic(req) => {
                                // The event pairs 1:1 with the `ReqFailed`
                                // that `fail_basic` emits (group sheds
                                // surface through `GroupFailed` instead).
                                // Shedding the retransmit stream of an
                                // already-settled request — the message
                                // landed but its ack kept getting dropped
                                // — is harmless and surfaces nothing.
                                let live = {
                                    let st = self.st.borrow();
                                    st.reqs
                                        .get(req)
                                        .is_some_and(|s| !s.done && s.error.is_none())
                                };
                                if live {
                                    self.ctx.emit(&ProtoEvent::RetryBudgetExhausted {
                                        rank: self.rank,
                                        msg_id,
                                        path: HealthPath::Ctrl,
                                    });
                                    self.fail_basic(
                                        req,
                                        OffloadError::RetryBudgetExhausted { msg_id, attempts },
                                        attempts,
                                    );
                                }
                            }
                            ReqOrigin::Group(req_id) => {
                                let gen = self.st.borrow().groups[req_id].gen;
                                self.fail_group(req_id, gen);
                            }
                        }
                    }
                    _ => {}
                }
                return;
            }
            CtrlMsg::BackpressureTick => {
                self.flush_deferred(self.cfg.queue_cap.max(1));
                return;
            }
            CtrlMsg::DeadlineTick { req } => {
                self.on_deadline(req);
                return;
            }
            other => other,
        };
        let mut finished_msg = None;
        match body {
            CtrlMsg::FinSend { req, credit, .. } | CtrlMsg::FinRecv { req, credit, .. } => {
                let mut st = self.st.borrow_mut();
                match st.reqs.get_mut(req) {
                    // Exactly-once completion: a FIN for an already-done
                    // request (replayed work after a proxy restart) must
                    // not re-complete it or re-emit `HostReqDone`.
                    Some(slot) if slot.done => {
                        drop(st);
                        self.ctx.stat_incr("offload.reliable.dup_fins", 1);
                        return;
                    }
                    // A cancelled (or otherwise failed) request never
                    // completes: a late FIN is dropped, keeping the
                    // slot's typed error authoritative.
                    Some(slot) if slot.error.is_some() => {
                        drop(st);
                        self.ctx.stat_incr("offload.host.late_fins", 1);
                        return;
                    }
                    Some(slot) => {
                        slot.done = true;
                        slot.replay = None;
                        slot.post = None;
                        finished_msg = Some(slot.msg_id);
                        st.live_basic = st.live_basic.saturating_sub(1);
                    }
                    None => {
                        drop(st);
                        self.ctx.stat_incr("offload.host.bad_ctrl", 1);
                        return;
                    }
                }
                drop(st);
                self.release_window(req);
                self.unpin_gvmi(req);
                if let Some(msg_id) = finished_msg {
                    self.note_settled(msg_id);
                }
                // The FIN's credit piggyback reports free proxy slots;
                // admit at least one deferred post (our own completion
                // freed a window slot even if the proxy reported none).
                self.flush_deferred((credit as usize).max(1));
            }
            CtrlMsg::RecvMeta {
                dst_rank,
                dst_req_id,
                entries,
            } => {
                let mut st = self.st.borrow_mut();
                st.metas_from
                    .entry(dst_rank)
                    .or_insert_with(|| MetaQueue {
                        queue: VecDeque::new(),
                    })
                    .queue
                    .push_back((dst_req_id, entries));
            }
            CtrlMsg::GroupFin { req_id, gen } => {
                let ids: Vec<u64> = {
                    let mut st = self.st.borrow_mut();
                    let g = &mut st.groups[req_id];
                    let first_fin = g.fin_gen == 0 && gen > 0;
                    // `max` keeps duplicate group FINs idempotent.
                    g.fin_gen = g.fin_gen.max(gen);
                    // Group wire entries share the msg-id namespace with
                    // basic requests but never enter the proxies' FIN
                    // journals; fold them into the ack horizon on the
                    // first completion so it can advance past them.
                    if first_fin && self.cfg.journal_cap > 0 {
                        g.wire
                            .iter()
                            .flatten()
                            .filter_map(|e| match e {
                                WireEntry::Send { msg_id, .. } => Some(*msg_id),
                                _ => None,
                            })
                            .collect()
                    } else {
                        Vec::new()
                    }
                };
                for id in ids {
                    self.note_settled(id);
                }
            }
            CtrlMsg::ProxyRestarted { proxy, epoch } => {
                self.on_proxy_restarted(proxy, epoch);
            }
            // Backpressure: the proxy refused admission. Return the
            // credit, park the request on the deferred queue, and retry
            // after an exponential backoff.
            CtrlMsg::QueueFull { msg_id } => {
                let req = {
                    let st = self.st.borrow();
                    st.reqs
                        .iter()
                        .position(|s| s.msg_id == msg_id && !s.done && s.error.is_none())
                };
                if let Some(req) = req {
                    self.release_window(req);
                    let attempt = {
                        let mut st = self.st.borrow_mut();
                        st.reqs[req].target = None;
                        st.reqs[req].attempts += 1;
                        st.deferred.push(self.tenant, req);
                        st.reqs[req].attempts
                    };
                    self.ctx.stat_incr("offload.credit.nacks", 1);
                    self.ctx.deliver_self(
                        backoff_delay_from(self.cfg.retx_base, self.cfg.retx_cap, attempt),
                        Box::new(NetMsg::Notify(Box::new(CtrlMsg::BackpressureTick))),
                    );
                }
            }
            // Typed data-plane failure: the proxy exhausted the bounded
            // payload-retransmission budget for this transfer.
            CtrlMsg::DataError {
                req,
                msg_id,
                attempts,
                shed,
            } => {
                // A shed transfer was dropped by the proxy's per-peer data
                // retry budget (the proxy already emitted
                // `RetryBudgetExhausted`); an exhausted one burned the full
                // `data_retx_max` allowance.
                let err = if shed {
                    OffloadError::RetryBudgetExhausted { msg_id, attempts }
                } else {
                    OffloadError::DataIntegrity { msg_id, attempts }
                };
                self.fail_basic(req, err, attempts);
            }
            CtrlMsg::GroupDataError { req_id, gen, .. } => {
                self.fail_group(req_id, gen);
            }
            other => panic!(
                "unexpected control message on host {}: {other:?}",
                self.rank
            ),
        }
        // The host CPU just spent cycles on the offload plane. If work is
        // still outstanding after applying the message, this was a genuine
        // mid-operation intervention (the paper's overlap killer); a
        // terminal completion notice is a plain wakeup.
        let outstanding = {
            let st = self.st.borrow();
            st.reqs.iter().any(|r| !r.done) || st.groups.iter().any(|g| g.fin_gen < g.gen)
        };
        self.ctx.stat_incr("offload.host.wakeups", 1);
        if outstanding {
            self.ctx.stat_incr("offload.host.interventions", 1);
        }
        self.ctx.emit(&ProtoEvent::HostWakeup {
            rank: self.rank,
            intervention: outstanding,
        });
        // FIN observed: close the transfer's causal timeline. Emitted
        // after the wakeup so observers see intervention classification
        // and completion at the same instant, in a fixed order.
        if let Some(msg_id) = finished_msg {
            self.ctx.emit(&ProtoEvent::HostReqDone {
                rank: self.rank,
                msg_id,
                more_outstanding: outstanding,
            });
        }
    }

    /// Surface a permanent ctrl-plane failure on whatever the abandoned
    /// message was working for.
    fn fail_origin(&self, origin: ReqOrigin, msg_id: u64, attempts: u32) {
        match origin {
            ReqOrigin::Free => {}
            ReqOrigin::Basic(req) => {
                self.fail_basic(
                    req,
                    OffloadError::CtrlUndeliverable { msg_id, attempts },
                    attempts,
                );
            }
            ReqOrigin::Group(req_id) => {
                let gen = self.st.borrow().groups[req_id].gen;
                self.fail_group(req_id, gen);
            }
        }
    }

    /// Fail a basic request slot with a typed error (idempotent).
    fn fail_basic(&self, req: usize, err: OffloadError, attempts: u32) {
        let msg_id = {
            let mut st = self.st.borrow_mut();
            let Some(slot) = st.reqs.get_mut(req) else {
                return;
            };
            if slot.done || slot.error.is_some() {
                return;
            }
            slot.error = Some(err);
            slot.replay = None;
            slot.post = None;
            let msg_id = slot.msg_id;
            st.live_basic = st.live_basic.saturating_sub(1);
            msg_id
        };
        self.release_window(req);
        self.unpin_gvmi(req);
        self.note_settled(msg_id);
        self.ctx.stat_incr("offload.reliable.req_failures", 1);
        self.ctx.emit(&ProtoEvent::ReqFailed {
            rank: self.rank,
            msg_id,
            attempts,
        });
        self.flush_deferred(1);
    }

    /// Fail the in-flight generation of a group request (idempotent;
    /// stale failures for an older generation are ignored).
    fn fail_group(&self, req_id: usize, gen: u64) {
        let gen = {
            let mut st = self.st.borrow_mut();
            let Some(g) = st.groups.get_mut(req_id) else {
                return;
            };
            if gen < g.gen || g.fin_gen >= g.gen || g.error.is_some() {
                return;
            }
            g.error = Some(OffloadError::GroupFailed { req_id, gen: g.gen });
            g.gen
        };
        self.ctx.stat_incr("offload.group.failures", 1);
        self.ctx.emit(&ProtoEvent::GroupFailed {
            host_rank: self.rank,
            req_id,
            gen,
        });
    }

    /// Cancel a request slot: typed error, proxy reap notice, credit and
    /// pin release (idempotent).
    fn cancel_req(&self, req: usize, err: OffloadError) {
        let settle = {
            let mut st = self.st.borrow_mut();
            let slot = &mut st.reqs[req];
            if slot.done || slot.error.is_some() {
                return;
            }
            slot.error = Some(err);
            slot.replay = None;
            slot.post = None;
            let settled = (slot.msg_id, slot.target);
            st.live_basic = st.live_basic.saturating_sub(1);
            settled
        };
        let (msg_id, target) = settle;
        self.release_window(req);
        self.unpin_gvmi(req);
        self.note_settled(msg_id);
        self.ctx.stat_incr("offload.cancel.requests", 1);
        self.ctx.emit(&ProtoEvent::ReqCancelled {
            rank: self.rank,
            msg_id,
        });
        // Tell the proxy to reap queued descriptors and suppress late
        // matches. A still-deferred request never reached the proxy.
        if let Some(to) = target {
            self.post_ctrl(
                to,
                self.cfg.ctrl_bytes,
                CtrlMsg::Cancel { msg_id },
                ReqOrigin::Free,
            );
            self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        }
        self.flush_deferred(1);
    }

    /// A deadline timer fired: cancel the request (or fail the group
    /// generation) if it still has not settled.
    fn on_deadline(&self, req: usize) {
        if req >= GROUP_DEADLINE_BASE {
            let req_id = req - GROUP_DEADLINE_BASE;
            let gen = {
                let st = self.st.borrow();
                let g = &st.groups[req_id];
                if g.fin_gen >= g.gen || g.error.is_some() {
                    return;
                }
                g.gen
            };
            self.ctx.stat_incr("offload.deadline.expired", 1);
            self.fail_group(req_id, gen);
            return;
        }
        let pending = {
            let st = self.st.borrow();
            st.reqs
                .get(req)
                .filter(|s| !s.done && s.error.is_none())
                .map(|s| s.msg_id)
        };
        if let Some(msg_id) = pending {
            self.ctx.stat_incr("offload.deadline.expired", 1);
            self.cancel_req(req, OffloadError::DeadlineExceeded { msg_id });
        }
    }

    /// Proxy-restart recovery (DESIGN.md §13): on the first notice of a
    /// higher epoch, invalidate everything the crashed proxy held on our
    /// behalf — the GVMI registration cache (its cross-registrations
    /// died) and the group metadata caches — then replay every in-flight
    /// basic request and group generation that targeted it.
    fn on_proxy_restarted(&self, proxy: EpId, epoch: u64) {
        {
            let mut st = self.st.borrow_mut();
            let known = st.proxy_epochs.entry(proxy.index()).or_insert(0);
            if epoch <= *known {
                return; // stale or duplicate notice
            }
            *known = epoch;
            // Recovery: the restart wiped the proxy's ctrl state, so any
            // deficit our retry budget accumulated against it is moot.
            // Start the fresh epoch with a full bucket.
            st.rel.reset_budget_for(proxy);
        }
        self.ctx.stat_incr("offload.reliable.restarts_seen", 1);
        if proxy == self.proxy_ep {
            let n_proxies = self.cluster.proxies_per_dpu();
            let mut st = self.st.borrow_mut();
            st.gvmi_cache = RankAddrCache::new(n_proxies);
            for g in &mut st.groups {
                g.proxy_cached = false;
            }
        }
        // Replay in-flight basic requests addressed to the restarted
        // proxy. The proxy's completion journal survives the crash, so a
        // request whose FIN raced the crash is answered directly instead
        // of re-executed.
        let replays: Vec<(usize, EpId, CtrlMsg)> = {
            let st = self.st.borrow();
            st.reqs
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.done && s.error.is_none())
                .filter_map(|(i, s)| s.replay.as_ref().map(|(to, m)| (i, *to, m.clone())))
                .filter(|(_, to, _)| *to == proxy)
                .collect()
        };
        for (req, to, msg) in replays {
            let msg_id = self.st.borrow().reqs[req].msg_id;
            self.ctx.stat_incr("offload.reliable.replays", 1);
            self.ctx.emit(&ProtoEvent::ReqReplayed {
                rank: self.rank,
                msg_id,
            });
            self.post_ctrl(to, self.cfg.ctrl_bytes, msg, ReqOrigin::Basic(req));
        }
        // Re-ship in-flight group generations: the proxy's instances and
        // metadata cache died with it, so send the full packet again
        // (which restarts the generation) and mark the cache warm.
        if proxy == self.proxy_ep {
            let inflight: Vec<(usize, u64)> = {
                let st = self.st.borrow();
                st.groups
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.wire.is_some() && g.gen > g.fin_gen)
                    .map(|(i, g)| (i, g.gen))
                    .collect()
            };
            for (req_id, gen) in inflight {
                self.ctx.stat_incr("offload.reliable.replays", 1);
                self.ctx.emit(&ProtoEvent::ReqReplayed {
                    rank: self.rank,
                    msg_id: 0,
                });
                self.send_group_packet(GroupRequest(req_id), gen);
                self.st.borrow_mut().groups[req_id].proxy_cached = true;
            }
        }
    }
}
