//! Host-side API of the offload framework: the paper's Basic and Group
//! primitives (Listings 2 and 4).
//!
//! ```text
//! Init_Offload()            -> Offload::init
//! Send_Offload(...)         -> Offload::send_offload
//! Recv_Offload(...)         -> Offload::recv_offload
//! Wait(&req)                -> Offload::wait
//! Finalize_Offload()        -> Offload::finalize
//!
//! Group_Offload_start(&req) -> Offload::group_start
//! Send_Goffload(...)        -> GroupRequest::send  (via Offload::group_send)
//! Recv_Goffload(...)        -> Offload::group_recv
//! Local_barrier_Goffload    -> Offload::group_barrier
//! Group_Offload_end         -> Offload::group_end
//! Group_Offload_call        -> Offload::group_call
//! Group_Wait                -> Offload::group_wait
//! ```

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};

use rdma::{Channel, ClusterCtx, EpId, Inbox, MrKey, NetMsg, VAddr};
use simnet::ProcessCtx;

use crate::config::{DataPath, OffloadConfig};
use crate::events::{CacheOutcome, CacheSide, HostCacheKind, ProtoEvent, ReqDir};
use crate::messages::{CtrlMsg, GroupKey, WireEntry, WRID_MASK, WRID_OFF_HOST};
use crate::reg_cache::RankAddrCache;

/// Handle of a Basic-primitive transfer (`OffloadRequest` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OffloadReq(usize);

impl OffloadReq {
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// Handle of a recorded group pattern (`OffloadGroupRequest` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GroupRequest(usize);

/// One recorded group operation.
#[derive(Clone, Debug)]
enum GroupOp {
    Send {
        addr: VAddr,
        len: u64,
        dst: usize,
        tag: u64,
    },
    Recv {
        addr: VAddr,
        len: u64,
        src: usize,
        tag: u64,
    },
    Barrier,
}

struct GroupState {
    ops: Vec<GroupOp>,
    ended: bool,
    gen: u64,
    fin_gen: u64,
    /// Wire entries built during the first call (metadata gather done).
    wire: Option<Vec<WireEntry>>,
    /// Proxy already holds the metadata (group cache is warm).
    proxy_cached: bool,
}

/// One receive-metadata entry: `(tag, buffer, rkey)`.
type MetaEntry = (u64, VAddr, MrKey);

/// Metadata received from one receiving host, consumed FIFO per source:
/// `(dst_req_id, entries)`.
struct MetaQueue {
    queue: VecDeque<(usize, Vec<MetaEntry>)>,
}

/// One basic-request slot: completion flag plus the stable transfer id
/// assigned at post time (threads the causal timeline through the event
/// stream).
struct ReqSlot {
    done: bool,
    msg_id: u64,
}

struct HostState {
    reqs: Vec<ReqSlot>,
    /// Monotone per-rank sequence feeding `msg_id` allocation (basic
    /// requests and group wire entries share the namespace).
    next_msg_seq: u64,
    /// Host-side GVMI cache, indexed by the mapped proxy's local index.
    gvmi_cache: RankAddrCache<MrKey>,
    /// Host-side IB cache (receive buffers).
    ib_cache: RankAddrCache<MrKey>,
    groups: Vec<GroupState>,
    /// Order-stable on purpose: message matching must never depend on
    /// hash-iteration order (see `xtask lint`).
    metas_from: BTreeMap<usize, MetaQueue>,
}

/// Host-side engine of the offload framework. One per application rank.
pub struct Offload {
    ctx: ProcessCtx,
    cluster: ClusterCtx,
    rank: usize,
    ep: EpId,
    proxy_ep: EpId,
    proxy_idx: usize,
    cfg: OffloadConfig,
    chan: Channel,
    st: RefCell<HostState>,
}

impl Offload {
    /// `Init_Offload()`: attach this rank to the framework. The cluster
    /// must have been built with proxies running
    /// [`crate::proxy::proxy_main`] and the *same* [`OffloadConfig`].
    ///
    /// The GVMI-ID exchange the paper performs here (once per protection
    /// domain) is modelled by the fabric assigning each proxy its GVMI at
    /// endpoint creation; the exchange itself is a one-time O(µs) cost we
    /// fold into startup.
    pub fn init(
        rank: usize,
        ctx: ProcessCtx,
        cluster: ClusterCtx,
        inbox: &Inbox,
        cfg: OffloadConfig,
    ) -> Offload {
        assert!(
            cluster.proxies_per_dpu() > 0,
            "offload requires DPU proxies; build the cluster with proxy_main"
        );
        let chan = inbox.channel(|m| match m {
            NetMsg::Packet(p) => p.body.is::<CtrlMsg>(),
            NetMsg::Notify(p) => p.is::<CtrlMsg>(),
            NetMsg::Cqe(c) => c.wrid & WRID_MASK == WRID_OFF_HOST,
        });
        let ep = cluster.host_ep(rank);
        let proxy_ep = cluster.proxy_for_rank(rank);
        let proxy_idx = rank % cluster.proxies_per_dpu();
        let n_proxies = cluster.proxies_per_dpu();
        Offload {
            ctx,
            cluster,
            rank,
            ep,
            proxy_ep,
            proxy_idx,
            cfg,
            chan,
            st: RefCell::new(HostState {
                reqs: Vec::new(),
                next_msg_seq: 0,
                gvmi_cache: RankAddrCache::new(n_proxies),
                ib_cache: RankAddrCache::new(1),
                groups: Vec::new(),
                metas_from: BTreeMap::new(),
            }),
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.cluster.world_size()
    }

    /// Process context (compute, tracing).
    pub fn ctx(&self) -> &ProcessCtx {
        &self.ctx
    }

    /// The cluster roster.
    pub fn cluster(&self) -> &ClusterCtx {
        &self.cluster
    }

    /// The configuration this engine was initialized with.
    pub fn config(&self) -> &OffloadConfig {
        &self.cfg
    }

    /// Allocate a fresh basic-request slot and its transfer id
    /// (crate-internal extensions).
    pub(crate) fn new_basic_req(&self) -> (OffloadReq, u64) {
        let (req, msg_id) = self.new_req();
        (OffloadReq(req), msg_id)
    }

    /// Ship a control message to this rank's mapped proxy
    /// (crate-internal extensions).
    pub(crate) fn send_ctrl_to_proxy(&self, msg: CtrlMsg) {
        self.cluster
            .fabric()
            .send_packet(
                &self.ctx,
                self.ep,
                self.proxy_ep,
                self.cfg.ctrl_bytes,
                Box::new(msg),
            )
            .expect("control message to proxy");
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
    }

    // ---- Basic primitives ----

    /// `Send_Offload`: non-blocking offloaded send. The transfer is driven
    /// entirely by the DPU proxy; this call only registers (through the
    /// GVMI cache) and posts one RTS control message.
    pub fn send_offload(&self, addr: VAddr, len: u64, dst: usize, tag: u64) -> OffloadReq {
        assert!(dst < self.size(), "send_offload: bad destination {dst}");
        let (req, msg_id) = self.new_req();
        self.ctx.emit(&ProtoEvent::HostReqPosted {
            rank: self.rank,
            msg_id,
            peer: dst,
            tag,
            bytes: len,
            dir: ReqDir::Send,
        });
        let fab = self.cluster.fabric();
        let (mkey, src_rkey) = match self.cfg.data_path {
            DataPath::Gvmi => (Some(self.cached_gvmi_reg(addr, len)), None),
            // Staging: the proxy pulls the payload with an RDMA READ
            // through a plain rkey (BluesMPI-style worker read).
            DataPath::Staging => (None, Some(self.cached_ib_reg(addr, len))),
        };
        fab.send_packet(
            &self.ctx,
            self.ep,
            self.proxy_ep,
            self.cfg.ctrl_bytes,
            Box::new(CtrlMsg::Rts {
                src_rank: self.rank,
                dst_rank: dst,
                tag,
                addr,
                len,
                mkey,
                src_rkey,
                src_req: req,
                src_pid: self.ctx.pid(),
                msg_id,
            }),
        )
        .expect("RTS to proxy");
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        OffloadReq(req)
    }

    /// `Recv_Offload`: non-blocking offloaded receive. Registers the
    /// buffer (IB cache) and sends one RTR control message to the proxy
    /// *on the sender's node* — the proxy that will move the data.
    pub fn recv_offload(&self, addr: VAddr, len: u64, src: usize, tag: u64) -> OffloadReq {
        assert!(src < self.size(), "recv_offload: bad source {src}");
        let (req, msg_id) = self.new_req();
        self.ctx.emit(&ProtoEvent::HostReqPosted {
            rank: self.rank,
            msg_id,
            peer: src,
            tag,
            bytes: len,
            dir: ReqDir::Recv,
        });
        let rkey = self.cached_ib_reg(addr, len);
        let src_proxy = self.cluster.proxy_for_rank(src);
        self.cluster
            .fabric()
            .send_packet(
                &self.ctx,
                self.ep,
                src_proxy,
                self.cfg.ctrl_bytes,
                Box::new(CtrlMsg::Rtr {
                    src_rank: src,
                    dst_rank: self.rank,
                    tag,
                    addr,
                    len,
                    rkey,
                    dst_req: req,
                    dst_pid: self.ctx.pid(),
                    msg_id,
                }),
            )
            .expect("RTR to proxy");
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        OffloadReq(req)
    }

    /// Has the request completed? Drains pending completions.
    pub fn test(&self, req: OffloadReq) -> bool {
        self.drain();
        self.st.borrow().reqs[req.0].done
    }

    /// `Wait`: block until `req` completes.
    pub fn wait(&self, req: OffloadReq) {
        self.drain();
        while !self.st.borrow().reqs[req.0].done {
            let msg = self.chan.next_blocking(&self.ctx);
            self.handle(msg);
        }
    }

    /// Wait for every request in `reqs`.
    pub fn wait_all(&self, reqs: &[OffloadReq]) {
        for &r in reqs {
            self.wait(r);
        }
    }

    /// `Finalize_Offload`: tell the mapped proxy this rank is done. All
    /// outstanding requests must have completed.
    pub fn finalize(&self) {
        self.drain();
        {
            let st = self.st.borrow();
            assert!(
                st.reqs.iter().all(|r| r.done),
                "finalize with incomplete basic requests"
            );
            assert!(
                st.groups.iter().all(|g| g.fin_gen == g.gen),
                "finalize with incomplete group requests"
            );
        }
        self.cluster
            .fabric()
            .send_packet(
                &self.ctx,
                self.ep,
                self.proxy_ep,
                self.cfg.ctrl_bytes,
                Box::new(CtrlMsg::Shutdown { rank: self.rank }),
            )
            .expect("shutdown to proxy");
        self.ctx
            .emit(&ProtoEvent::HostFinalized { rank: self.rank });
    }

    // ---- Group primitives ----

    /// `Group_Offload_start`: begin recording a communication graph.
    pub fn group_start(&self) -> GroupRequest {
        let mut st = self.st.borrow_mut();
        st.groups.push(GroupState {
            ops: Vec::new(),
            ended: false,
            gen: 0,
            fin_gen: 0,
            wire: None,
            proxy_cached: false,
        });
        GroupRequest(st.groups.len() - 1)
    }

    /// `Send_Goffload`: record an offloaded send in the graph.
    pub fn group_send(&self, req: GroupRequest, addr: VAddr, len: u64, dst: usize, tag: u64) {
        assert!(dst < self.size(), "group_send: bad destination {dst}");
        let mut st = self.st.borrow_mut();
        let g = &mut st.groups[req.0];
        assert!(!g.ended, "group_send after group_end");
        g.ops.push(GroupOp::Send {
            addr,
            len,
            dst,
            tag,
        });
    }

    /// `Recv_Goffload`: record an offloaded receive in the graph.
    pub fn group_recv(&self, req: GroupRequest, addr: VAddr, len: u64, src: usize, tag: u64) {
        assert!(src < self.size(), "group_recv: bad source {src}");
        let mut st = self.st.borrow_mut();
        let g = &mut st.groups[req.0];
        assert!(!g.ended, "group_recv after group_end");
        g.ops.push(GroupOp::Recv {
            addr,
            len,
            src,
            tag,
        });
    }

    /// `Local_barrier_Goffload`: operations recorded after this point
    /// start only after everything before it has completed *on the DPU*,
    /// with no host involvement.
    pub fn group_barrier(&self, req: GroupRequest) {
        let mut st = self.st.borrow_mut();
        let g = &mut st.groups[req.0];
        assert!(!g.ended, "group_barrier after group_end");
        g.ops.push(GroupOp::Barrier);
    }

    /// `Group_Offload_end`: finish recording.
    pub fn group_end(&self, req: GroupRequest) {
        let mut st = self.st.borrow_mut();
        st.groups[req.0].ended = true;
    }

    /// `Group_Offload_call`: offload the recorded graph to the proxy. On
    /// the first call this registers all buffers, gathers receive metadata
    /// from the destination hosts, and ships the full packet; later calls
    /// hit the caches and send a single small execute message (paper
    /// §VII-D).
    pub fn group_call(&self, req: GroupRequest) {
        assert!(
            self.st.borrow().groups[req.0].ended,
            "group_call before group_end"
        );
        self.drain();
        let gen = {
            let mut st = self.st.borrow_mut();
            let g = &mut st.groups[req.0];
            g.gen += 1;
            g.gen
        };
        let need_build = self.st.borrow().groups[req.0].wire.is_none();
        if need_build {
            self.build_wire(req);
        }
        let use_cache = self.cfg.use_group_cache;
        let cached = self.st.borrow().groups[req.0].proxy_cached;
        if cached && use_cache {
            self.send_group_exec(req, gen);
        } else {
            self.send_group_packet(req, gen);
            self.st.borrow_mut().groups[req.0].proxy_cached = true;
        }
        // The overlap window (paper Figs. 12/14) opens when control
        // returns to the application.
        self.ctx.emit(&ProtoEvent::GroupCallReturned {
            host_rank: self.rank,
            req_id: req.0,
            gen,
        });
    }

    /// `Group_Wait`: block until generation `gen` (the latest call) of the
    /// group request completes on the DPU.
    pub fn group_wait(&self, req: GroupRequest) {
        self.drain();
        let gen = loop {
            {
                let st = self.st.borrow();
                let g = &st.groups[req.0];
                if g.fin_gen >= g.gen {
                    break g.gen;
                }
            }
            let msg = self.chan.next_blocking(&self.ctx);
            self.handle(msg);
        };
        self.ctx.emit(&ProtoEvent::GroupWaitDone {
            host_rank: self.rank,
            req_id: req.0,
            gen,
        });
    }

    /// Has the latest generation of `req` completed? Drains completions.
    pub fn group_test(&self, req: GroupRequest) -> bool {
        self.drain();
        let st = self.st.borrow();
        let g = &st.groups[req.0];
        g.fin_gen >= g.gen
    }

    // ---- internals ----

    fn new_req(&self) -> (usize, u64) {
        let mut st = self.st.borrow_mut();
        st.next_msg_seq += 1;
        let msg_id = ((self.rank as u64) << 32) | st.next_msg_seq;
        st.reqs.push(ReqSlot {
            done: false,
            msg_id,
        });
        (st.reqs.len() - 1, msg_id)
    }

    /// Allocate a transfer id outside a request slot (group wire entries
    /// share the per-rank namespace with basic requests).
    fn alloc_msg_id(&self) -> u64 {
        let mut st = self.st.borrow_mut();
        st.next_msg_seq += 1;
        ((self.rank as u64) << 32) | st.next_msg_seq
    }

    /// Host-side GVMI registration through the array-of-BSTs cache.
    fn cached_gvmi_reg(&self, addr: VAddr, len: u64) -> MrKey {
        let fab = self.cluster.fabric();
        let gvmi = fab.gvmi_of(self.proxy_ep).expect("proxy has a GVMI");
        if self.cfg.use_gvmi_cache {
            let hit = self
                .st
                .borrow_mut()
                .gvmi_cache
                .get(self.proxy_idx, addr.0, len)
                .copied();
            self.ctx.emit(&ProtoEvent::HostCacheLookup {
                rank: self.rank,
                cache: HostCacheKind::Gvmi,
                outcome: if hit.is_some() {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Miss
                },
            });
            if let Some(k) = hit {
                self.ctx.stat_incr("offload.gvmi_cache.host.hit", 1);
                return k;
            }
            self.ctx.stat_incr("offload.gvmi_cache.host.miss", 1);
        }
        let mkey = fab
            .reg_mr_gvmi(&self.ctx, self.ep, addr, len, gvmi)
            .expect("GVMI registration of a valid buffer");
        if self.cfg.use_gvmi_cache {
            let evicted = self
                .st
                .borrow_mut()
                .gvmi_cache
                .insert(self.proxy_idx, addr.0, len, mkey);
            if evicted.is_some() {
                self.ctx.emit(&ProtoEvent::CacheEvicted {
                    rank: self.rank,
                    side: CacheSide::HostGvmi,
                });
            }
        }
        mkey
    }

    /// Host-side IB registration through the cache.
    fn cached_ib_reg(&self, addr: VAddr, len: u64) -> MrKey {
        if self.cfg.use_gvmi_cache {
            let hit = self.st.borrow_mut().ib_cache.get(0, addr.0, len).copied();
            self.ctx.emit(&ProtoEvent::HostCacheLookup {
                rank: self.rank,
                cache: HostCacheKind::Ib,
                outcome: if hit.is_some() {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Miss
                },
            });
            if let Some(k) = hit {
                self.ctx.stat_incr("offload.ib_cache.host.hit", 1);
                return k;
            }
            self.ctx.stat_incr("offload.ib_cache.host.miss", 1);
        }
        let key = self
            .cluster
            .fabric()
            .reg_mr(&self.ctx, self.ep, addr, len)
            .expect("IB registration of a valid buffer");
        if self.cfg.use_gvmi_cache {
            let evicted = self.st.borrow_mut().ib_cache.insert(0, addr.0, len, key);
            if evicted.is_some() {
                self.ctx.emit(&ProtoEvent::CacheEvicted {
                    rank: self.rank,
                    side: CacheSide::HostIb,
                });
            }
        }
        key
    }

    /// First-call phase of a group request: register everything, gather
    /// receive metadata from the peers my sends target, and build the wire
    /// entries (paper Fig. 9).
    fn build_wire(&self, req: GroupRequest) {
        let ops = self.st.borrow().groups[req.0].ops.clone();
        let fab = self.cluster.fabric().clone();
        // Register send buffers (GVMI cache) and receive buffers (IB cache).
        let mut send_keys = Vec::new();
        let mut recv_keys = Vec::new();
        for op in &ops {
            match op {
                GroupOp::Send { addr, len, .. } => match self.cfg.data_path {
                    DataPath::Gvmi => {
                        send_keys.push((Some(self.cached_gvmi_reg(*addr, *len)), None))
                    }
                    DataPath::Staging => {
                        send_keys.push((None, Some(self.cached_ib_reg(*addr, *len))))
                    }
                },
                GroupOp::Recv { addr, len, .. } => {
                    recv_keys.push(self.cached_ib_reg(*addr, *len));
                    send_keys.push((None, None));
                }
                GroupOp::Barrier => send_keys.push((None, None)),
            }
        }
        // Send my receive metadata to each source rank (sorted by rank so
        // posting order — and therefore timing — is deterministic).
        let mut per_src: std::collections::BTreeMap<usize, Vec<MetaEntry>> =
            std::collections::BTreeMap::new();
        let mut rk = 0usize;
        for op in &ops {
            if let GroupOp::Recv { addr, src, tag, .. } = op {
                per_src
                    .entry(*src)
                    .or_default()
                    .push((*tag, *addr, recv_keys[rk]));
                rk += 1;
            }
        }
        for (src, entries) in per_src {
            let n = entries.len() as u64;
            fab.send_packet(
                &self.ctx,
                self.ep,
                self.cluster.host_ep(src),
                self.cfg.ctrl_bytes + self.cfg.entry_bytes * n,
                Box::new(CtrlMsg::RecvMeta {
                    dst_rank: self.rank,
                    dst_req_id: req.0,
                    entries,
                }),
            )
            .expect("recv metadata");
            self.ctx.emit(&ProtoEvent::RecvMetaSent {
                from_rank: self.rank,
                to_rank: src,
                req_id: req.0,
            });
        }
        // Gather metadata from every destination of my sends (sorted, for
        // the same determinism reason).
        let mut needed: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for op in &ops {
            if let GroupOp::Send { dst, .. } = op {
                *needed.entry(*dst).or_insert(0) += 1;
            }
        }
        let mut metas: BTreeMap<usize, (usize, VecDeque<MetaEntry>)> = BTreeMap::new();
        for (&dst, &cnt) in &needed {
            loop {
                let got = {
                    let mut st = self.st.borrow_mut();
                    st.metas_from
                        .get_mut(&dst)
                        .and_then(|q| q.queue.pop_front())
                };
                if let Some((dst_req_id, entries)) = got {
                    assert!(
                        entries.len() >= cnt,
                        "peer {dst} granted {} buffers, need {cnt}",
                        entries.len()
                    );
                    metas.insert(dst, (dst_req_id, entries.into_iter().collect()));
                    break;
                }
                let msg = self.chan.next_blocking(&self.ctx);
                self.handle(msg);
            }
        }
        // Match each send with the destination's next receive entry of the
        // same tag (paper: "matched ... based on destination rank, tag").
        let mut wire = Vec::with_capacity(ops.len());
        for (sk, op) in ops.iter().enumerate() {
            match op {
                GroupOp::Send {
                    addr,
                    len,
                    dst,
                    tag,
                } => {
                    let (dst_req_id, entries) = metas.get_mut(dst).expect("meta gathered");
                    let pos = entries
                        .iter()
                        .position(|(t, _, _)| t == tag)
                        .unwrap_or_else(|| panic!("no matching recv at {dst} for tag {tag}"));
                    let (_, dst_addr, dst_rkey) = entries.remove(pos).expect("present");
                    let (mkey, src_rkey) = send_keys[sk];
                    wire.push(WireEntry::Send {
                        addr: *addr,
                        len: *len,
                        mkey: mkey.unwrap_or(MrKey::invalid()),
                        src_rkey: src_rkey.unwrap_or(MrKey::invalid()),
                        dst_rank: *dst,
                        tag: *tag,
                        dst_addr,
                        dst_rkey,
                        dst_req_id: *dst_req_id,
                        msg_id: self.alloc_msg_id(),
                    });
                }
                GroupOp::Recv { src, tag, .. } => {
                    wire.push(WireEntry::Recv {
                        src_rank: *src,
                        tag: *tag,
                    });
                }
                GroupOp::Barrier => wire.push(WireEntry::Barrier),
            }
        }
        self.st.borrow_mut().groups[req.0].wire = Some(wire);
    }

    fn send_group_packet(&self, req: GroupRequest, gen: u64) {
        let entries = self.st.borrow().groups[req.0]
            .wire
            .clone()
            .expect("wire built");
        let n = entries.len() as u64;
        self.cluster
            .fabric()
            .send_packet(
                &self.ctx,
                self.ep,
                self.proxy_ep,
                self.cfg.ctrl_bytes + self.cfg.entry_bytes * n,
                Box::new(CtrlMsg::GroupPacket {
                    key: GroupKey {
                        host_rank: self.rank,
                        req_id: req.0,
                    },
                    gen,
                    entries,
                    host_pid: self.ctx.pid(),
                }),
            )
            .expect("group packet");
        self.ctx.emit(&ProtoEvent::GroupPacketSent {
            host_rank: self.rank,
            req_id: req.0,
        });
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        self.ctx.stat_incr("offload.group.packets", 1);
    }

    fn send_group_exec(&self, req: GroupRequest, gen: u64) {
        self.cluster
            .fabric()
            .send_packet(
                &self.ctx,
                self.ep,
                self.proxy_ep,
                self.cfg.ctrl_bytes,
                Box::new(CtrlMsg::GroupExec {
                    key: GroupKey {
                        host_rank: self.rank,
                        req_id: req.0,
                    },
                    gen,
                }),
            )
            .expect("group exec");
        self.ctx.emit(&ProtoEvent::GroupExecSent {
            host_rank: self.rank,
            req_id: req.0,
            gen,
        });
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        self.ctx.stat_incr("offload.group.execs", 1);
    }

    /// Drain pending completions without blocking.
    fn drain(&self) {
        while let Some(msg) = self.chan.try_next(&self.ctx) {
            self.handle(msg);
        }
    }

    fn handle(&self, msg: NetMsg) {
        let decoded = match msg {
            NetMsg::Packet(p) => p.body.downcast::<CtrlMsg>().ok().map(|b| *b),
            NetMsg::Notify(b) => b.downcast::<CtrlMsg>().ok().map(|b| *b),
            NetMsg::Cqe(_) => return, // unsignaled paths only
        };
        let Some(body) = decoded else {
            // Not a control message despite the channel predicate: count
            // and drop rather than crashing the rank.
            self.ctx.stat_incr("offload.host.bad_ctrl", 1);
            self.ctx.emit(&ProtoEvent::CtrlDropped { at_proxy: false });
            return;
        };
        let mut finished_msg = None;
        match body {
            CtrlMsg::FinSend { req } | CtrlMsg::FinRecv { req } => {
                let mut st = self.st.borrow_mut();
                st.reqs[req].done = true;
                finished_msg = Some(st.reqs[req].msg_id);
            }
            CtrlMsg::RecvMeta {
                dst_rank,
                dst_req_id,
                entries,
            } => {
                let mut st = self.st.borrow_mut();
                st.metas_from
                    .entry(dst_rank)
                    .or_insert_with(|| MetaQueue {
                        queue: VecDeque::new(),
                    })
                    .queue
                    .push_back((dst_req_id, entries));
            }
            CtrlMsg::GroupFin { req_id, gen } => {
                let mut st = self.st.borrow_mut();
                let g = &mut st.groups[req_id];
                g.fin_gen = g.fin_gen.max(gen);
            }
            other => panic!(
                "unexpected control message on host {}: {other:?}",
                self.rank
            ),
        }
        // The host CPU just spent cycles on the offload plane. If work is
        // still outstanding after applying the message, this was a genuine
        // mid-operation intervention (the paper's overlap killer); a
        // terminal completion notice is a plain wakeup.
        let outstanding = {
            let st = self.st.borrow();
            st.reqs.iter().any(|r| !r.done) || st.groups.iter().any(|g| g.fin_gen < g.gen)
        };
        self.ctx.stat_incr("offload.host.wakeups", 1);
        if outstanding {
            self.ctx.stat_incr("offload.host.interventions", 1);
        }
        self.ctx.emit(&ProtoEvent::HostWakeup {
            rank: self.rank,
            intervention: outstanding,
        });
        // FIN observed: close the transfer's causal timeline. Emitted
        // after the wakeup so observers see intervention classification
        // and completion at the same instant, in a fixed order.
        if let Some(msg_id) = finished_msg {
            self.ctx.emit(&ProtoEvent::HostReqDone {
                rank: self.rank,
                msg_id,
                more_outstanding: outstanding,
            });
        }
    }
}
