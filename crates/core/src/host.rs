//! Host-side API of the offload framework: the paper's Basic and Group
//! primitives (Listings 2 and 4).
//!
//! ```text
//! Init_Offload()            -> Offload::init
//! Send_Offload(...)         -> Offload::send_offload
//! Recv_Offload(...)         -> Offload::recv_offload
//! Wait(&req)                -> Offload::wait
//! Finalize_Offload()        -> Offload::finalize
//!
//! Group_Offload_start(&req) -> Offload::group_start
//! Send_Goffload(...)        -> GroupRequest::send  (via Offload::group_send)
//! Recv_Goffload(...)        -> Offload::group_recv
//! Local_barrier_Goffload    -> Offload::group_barrier
//! Group_Offload_end         -> Offload::group_end
//! Group_Offload_call        -> Offload::group_call
//! Group_Wait                -> Offload::group_wait
//! ```

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};

use rdma::{Channel, ClusterCtx, EpId, Inbox, MrKey, NetMsg, VAddr};
use simnet::ProcessCtx;

use crate::config::{DataPath, OffloadConfig};
use crate::events::{CacheOutcome, CacheSide, CtrlKind, HostCacheKind, ProtoEvent, ReqDir};
use crate::messages::{CtrlMsg, GroupKey, WireEntry, WRID_MASK, WRID_OFF_HOST};
use crate::reg_cache::RankAddrCache;
use crate::reliable::{OffloadError, ReliableLink, TickOutcome};

/// Handle of a Basic-primitive transfer (`OffloadRequest` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OffloadReq(usize);

impl OffloadReq {
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// Handle of a recorded group pattern (`OffloadGroupRequest` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GroupRequest(usize);

/// One recorded group operation.
#[derive(Clone, Debug)]
enum GroupOp {
    Send {
        addr: VAddr,
        len: u64,
        dst: usize,
        tag: u64,
    },
    Recv {
        addr: VAddr,
        len: u64,
        src: usize,
        tag: u64,
    },
    Barrier,
}

struct GroupState {
    ops: Vec<GroupOp>,
    ended: bool,
    gen: u64,
    fin_gen: u64,
    /// Wire entries built during the first call (metadata gather done).
    wire: Option<Vec<WireEntry>>,
    /// Proxy already holds the metadata (group cache is warm).
    proxy_cached: bool,
}

/// One receive-metadata entry: `(tag, buffer, rkey)`.
type MetaEntry = (u64, VAddr, MrKey);

/// Metadata received from one receiving host, consumed FIFO per source:
/// `(dst_req_id, entries)`.
struct MetaQueue {
    queue: VecDeque<(usize, Vec<MetaEntry>)>,
}

/// One basic-request slot: completion flag plus the stable transfer id
/// assigned at post time (threads the causal timeline through the event
/// stream).
struct ReqSlot {
    done: bool,
    msg_id: u64,
    /// Terminal failure surfaced by the reliability layer (the request's
    /// ctrl message exhausted its retransmission budget).
    error: Option<OffloadError>,
    /// Destination and ctrl message kept for replay after a proxy
    /// restart. Populated only when the fault plan can crash proxies.
    replay: Option<(EpId, CtrlMsg)>,
}

struct HostState {
    reqs: Vec<ReqSlot>,
    /// Monotone per-rank sequence feeding `msg_id` allocation (basic
    /// requests and group wire entries share the namespace).
    next_msg_seq: u64,
    /// Host-side GVMI cache, indexed by the mapped proxy's local index.
    gvmi_cache: RankAddrCache<MrKey>,
    /// Host-side IB cache (receive buffers).
    ib_cache: RankAddrCache<MrKey>,
    groups: Vec<GroupState>,
    /// Order-stable on purpose: message matching must never depend on
    /// hash-iteration order (see `xtask lint`).
    metas_from: BTreeMap<usize, MetaQueue>,
    /// Reliable ctrl-plane endpoint (seq/ack/retransmit/dedup). Inert
    /// unless the fault plan arms it.
    rel: ReliableLink,
    /// Last restart epoch observed per proxy endpoint index; a higher
    /// epoch in a `ProxyRestarted` notice triggers recovery.
    proxy_epochs: BTreeMap<usize, u64>,
}

/// Host-side engine of the offload framework. One per application rank.
pub struct Offload {
    ctx: ProcessCtx,
    cluster: ClusterCtx,
    rank: usize,
    ep: EpId,
    proxy_ep: EpId,
    proxy_idx: usize,
    cfg: OffloadConfig,
    chan: Channel,
    st: RefCell<HostState>,
}

impl Offload {
    /// `Init_Offload()`: attach this rank to the framework. The cluster
    /// must have been built with proxies running
    /// [`crate::proxy::proxy_main`] and the *same* [`OffloadConfig`].
    ///
    /// The GVMI-ID exchange the paper performs here (once per protection
    /// domain) is modelled by the fabric assigning each proxy its GVMI at
    /// endpoint creation; the exchange itself is a one-time O(µs) cost we
    /// fold into startup.
    pub fn init(
        rank: usize,
        ctx: ProcessCtx,
        cluster: ClusterCtx,
        inbox: &Inbox,
        cfg: OffloadConfig,
    ) -> Offload {
        assert!(
            cluster.proxies_per_dpu() > 0,
            "offload requires DPU proxies; build the cluster with proxy_main"
        );
        let chan = inbox.channel(|m| match m {
            NetMsg::Packet(p) => p.body.is::<CtrlMsg>(),
            NetMsg::Notify(p) => p.is::<CtrlMsg>(),
            NetMsg::Cqe(c) => c.wrid & WRID_MASK == WRID_OFF_HOST,
        });
        let ep = cluster.host_ep(rank);
        let proxy_ep = cluster.proxy_for_rank(rank);
        let proxy_idx = rank % cluster.proxies_per_dpu();
        let n_proxies = cluster.proxies_per_dpu();
        let (fault, ctrl_bytes) = (cfg.fault, cfg.ctrl_bytes);
        Offload {
            ctx,
            cluster,
            rank,
            ep,
            proxy_ep,
            proxy_idx,
            cfg,
            chan,
            st: RefCell::new(HostState {
                reqs: Vec::new(),
                next_msg_seq: 0,
                gvmi_cache: RankAddrCache::new(n_proxies),
                ib_cache: RankAddrCache::new(1),
                groups: Vec::new(),
                metas_from: BTreeMap::new(),
                rel: ReliableLink::new(fault, ctrl_bytes, false, ep),
                proxy_epochs: BTreeMap::new(),
            }),
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.cluster.world_size()
    }

    /// Process context (compute, tracing).
    pub fn ctx(&self) -> &ProcessCtx {
        &self.ctx
    }

    /// The cluster roster.
    pub fn cluster(&self) -> &ClusterCtx {
        &self.cluster
    }

    /// The configuration this engine was initialized with.
    pub fn config(&self) -> &OffloadConfig {
        &self.cfg
    }

    /// Allocate a fresh basic-request slot and its transfer id
    /// (crate-internal extensions).
    pub(crate) fn new_basic_req(&self) -> (OffloadReq, u64) {
        let (req, msg_id) = self.new_req();
        (OffloadReq(req), msg_id)
    }

    /// Ship a control message to this rank's mapped proxy
    /// (crate-internal extensions). `req` ties the message to a basic
    /// request slot for replay-after-restart and abandonment errors.
    pub(crate) fn send_ctrl_to_proxy(&self, msg: CtrlMsg, req: Option<usize>) {
        self.post_ctrl(self.proxy_ep, self.cfg.ctrl_bytes, msg, req);
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
    }

    /// Ship one ctrl message: through the reliable link when the fault
    /// plan arms it, as a bare packet otherwise (byte-identical to the
    /// pre-reliability protocol on clean runs). When proxies can crash,
    /// the message is also stored on its request slot for replay.
    fn post_ctrl(&self, to: EpId, bytes: u64, msg: CtrlMsg, req: Option<usize>) {
        if let Some(r) = req {
            if self.cfg.fault.crash_at_step > 0 {
                self.st.borrow_mut().reqs[r].replay = Some((to, msg.clone()));
            }
        }
        let fab = self.cluster.fabric();
        if self.cfg.fault.reliable() {
            self.st
                .borrow_mut()
                .rel
                .send(&self.ctx, fab, to, bytes, msg, req);
        } else {
            fab.send_packet(&self.ctx, self.ep, to, bytes, Box::new(msg))
                .expect("control message send");
        }
    }

    // ---- Basic primitives ----

    /// `Send_Offload`: non-blocking offloaded send. The transfer is driven
    /// entirely by the DPU proxy; this call only registers (through the
    /// GVMI cache) and posts one RTS control message.
    pub fn send_offload(&self, addr: VAddr, len: u64, dst: usize, tag: u64) -> OffloadReq {
        assert!(dst < self.size(), "send_offload: bad destination {dst}");
        let (req, msg_id) = self.new_req();
        self.ctx.emit(&ProtoEvent::HostReqPosted {
            rank: self.rank,
            msg_id,
            peer: dst,
            tag,
            bytes: len,
            dir: ReqDir::Send,
        });
        let (mkey, src_rkey) = match self.cfg.data_path {
            // With registration failure armed, carry both keys so the
            // proxy can fall back to the staging path per message.
            DataPath::Gvmi if self.cfg.fault.fallback_enabled() => (
                Some(self.cached_gvmi_reg(addr, len)),
                Some(self.cached_ib_reg(addr, len)),
            ),
            DataPath::Gvmi => (Some(self.cached_gvmi_reg(addr, len)), None),
            // Staging: the proxy pulls the payload with an RDMA READ
            // through a plain rkey (BluesMPI-style worker read).
            DataPath::Staging => (None, Some(self.cached_ib_reg(addr, len))),
        };
        self.post_ctrl(
            self.proxy_ep,
            self.cfg.ctrl_bytes,
            CtrlMsg::Rts {
                src_rank: self.rank,
                dst_rank: dst,
                tag,
                addr,
                len,
                mkey,
                src_rkey,
                src_req: req,
                src_pid: self.ctx.pid(),
                msg_id,
            },
            Some(req),
        );
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        OffloadReq(req)
    }

    /// `Recv_Offload`: non-blocking offloaded receive. Registers the
    /// buffer (IB cache) and sends one RTR control message to the proxy
    /// *on the sender's node* — the proxy that will move the data.
    pub fn recv_offload(&self, addr: VAddr, len: u64, src: usize, tag: u64) -> OffloadReq {
        assert!(src < self.size(), "recv_offload: bad source {src}");
        let (req, msg_id) = self.new_req();
        self.ctx.emit(&ProtoEvent::HostReqPosted {
            rank: self.rank,
            msg_id,
            peer: src,
            tag,
            bytes: len,
            dir: ReqDir::Recv,
        });
        let rkey = self.cached_ib_reg(addr, len);
        let src_proxy = self.cluster.proxy_for_rank(src);
        self.post_ctrl(
            src_proxy,
            self.cfg.ctrl_bytes,
            CtrlMsg::Rtr {
                src_rank: src,
                dst_rank: self.rank,
                tag,
                addr,
                len,
                rkey,
                dst_req: req,
                dst_pid: self.ctx.pid(),
                msg_id,
            },
            Some(req),
        );
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        OffloadReq(req)
    }

    /// Has the request completed? Drains pending completions.
    pub fn test(&self, req: OffloadReq) -> bool {
        self.drain();
        self.st.borrow().reqs[req.0].done
    }

    /// `Wait`: block until `req` completes — or fails permanently, which
    /// only a fault plan can cause; check [`Offload::req_error`] then.
    pub fn wait(&self, req: OffloadReq) {
        self.drain();
        loop {
            {
                let st = self.st.borrow();
                let slot = &st.reqs[req.0];
                if slot.done || slot.error.is_some() {
                    break;
                }
            }
            let msg = self.chan.next_blocking(&self.ctx);
            self.handle(msg);
        }
    }

    /// Terminal failure of a request, if any: set when its ctrl message
    /// exhausted the reliability layer's retransmission budget. Always
    /// `None` on clean runs.
    pub fn req_error(&self, req: OffloadReq) -> Option<OffloadError> {
        self.st.borrow().reqs[req.0].error
    }

    /// Wait for every request in `reqs`.
    pub fn wait_all(&self, reqs: &[OffloadReq]) {
        for &r in reqs {
            self.wait(r);
        }
    }

    /// `Finalize_Offload`: tell the mapped proxy this rank is done. All
    /// outstanding requests must have completed (or failed with a typed
    /// [`OffloadError`] under a fault plan).
    pub fn finalize(&self) {
        self.drain();
        {
            let st = self.st.borrow();
            assert!(
                st.reqs.iter().all(|r| r.done || r.error.is_some()),
                "finalize with incomplete basic requests"
            );
            assert!(
                st.groups.iter().all(|g| g.fin_gen == g.gen),
                "finalize with incomplete group requests"
            );
        }
        self.post_ctrl(
            self.proxy_ep,
            self.cfg.ctrl_bytes,
            CtrlMsg::Shutdown { rank: self.rank },
            None,
        );
        // Under a lossy plan the shutdown itself needs acking (and the
        // proxy won't quiesce while we hold unacked messages): pump the
        // ctrl plane until the pending table drains. Abandonment bounds
        // this loop even against a dead peer.
        while self.st.borrow().rel.has_pending() {
            let msg = self.chan.next_blocking(&self.ctx);
            self.handle(msg);
        }
        self.ctx
            .emit(&ProtoEvent::HostFinalized { rank: self.rank });
    }

    // ---- Group primitives ----

    /// `Group_Offload_start`: begin recording a communication graph.
    pub fn group_start(&self) -> GroupRequest {
        let mut st = self.st.borrow_mut();
        st.groups.push(GroupState {
            ops: Vec::new(),
            ended: false,
            gen: 0,
            fin_gen: 0,
            wire: None,
            proxy_cached: false,
        });
        GroupRequest(st.groups.len() - 1)
    }

    /// `Send_Goffload`: record an offloaded send in the graph.
    pub fn group_send(&self, req: GroupRequest, addr: VAddr, len: u64, dst: usize, tag: u64) {
        assert!(dst < self.size(), "group_send: bad destination {dst}");
        let mut st = self.st.borrow_mut();
        let g = &mut st.groups[req.0];
        assert!(!g.ended, "group_send after group_end");
        g.ops.push(GroupOp::Send {
            addr,
            len,
            dst,
            tag,
        });
    }

    /// `Recv_Goffload`: record an offloaded receive in the graph.
    pub fn group_recv(&self, req: GroupRequest, addr: VAddr, len: u64, src: usize, tag: u64) {
        assert!(src < self.size(), "group_recv: bad source {src}");
        let mut st = self.st.borrow_mut();
        let g = &mut st.groups[req.0];
        assert!(!g.ended, "group_recv after group_end");
        g.ops.push(GroupOp::Recv {
            addr,
            len,
            src,
            tag,
        });
    }

    /// `Local_barrier_Goffload`: operations recorded after this point
    /// start only after everything before it has completed *on the DPU*,
    /// with no host involvement.
    pub fn group_barrier(&self, req: GroupRequest) {
        let mut st = self.st.borrow_mut();
        let g = &mut st.groups[req.0];
        assert!(!g.ended, "group_barrier after group_end");
        g.ops.push(GroupOp::Barrier);
    }

    /// `Group_Offload_end`: finish recording.
    pub fn group_end(&self, req: GroupRequest) {
        let mut st = self.st.borrow_mut();
        st.groups[req.0].ended = true;
    }

    /// `Group_Offload_call`: offload the recorded graph to the proxy. On
    /// the first call this registers all buffers, gathers receive metadata
    /// from the destination hosts, and ships the full packet; later calls
    /// hit the caches and send a single small execute message (paper
    /// §VII-D).
    pub fn group_call(&self, req: GroupRequest) {
        assert!(
            self.st.borrow().groups[req.0].ended,
            "group_call before group_end"
        );
        self.drain();
        let gen = {
            let mut st = self.st.borrow_mut();
            let g = &mut st.groups[req.0];
            g.gen += 1;
            g.gen
        };
        let need_build = self.st.borrow().groups[req.0].wire.is_none();
        if need_build {
            self.build_wire(req);
        }
        let use_cache = self.cfg.use_group_cache;
        let cached = self.st.borrow().groups[req.0].proxy_cached;
        if cached && use_cache {
            self.send_group_exec(req, gen);
        } else {
            self.send_group_packet(req, gen);
            self.st.borrow_mut().groups[req.0].proxy_cached = true;
        }
        // The overlap window (paper Figs. 12/14) opens when control
        // returns to the application.
        self.ctx.emit(&ProtoEvent::GroupCallReturned {
            host_rank: self.rank,
            req_id: req.0,
            gen,
        });
    }

    /// `Group_Wait`: block until generation `gen` (the latest call) of the
    /// group request completes on the DPU.
    pub fn group_wait(&self, req: GroupRequest) {
        self.drain();
        let gen = loop {
            {
                let st = self.st.borrow();
                let g = &st.groups[req.0];
                if g.fin_gen >= g.gen {
                    break g.gen;
                }
            }
            let msg = self.chan.next_blocking(&self.ctx);
            self.handle(msg);
        };
        self.ctx.emit(&ProtoEvent::GroupWaitDone {
            host_rank: self.rank,
            req_id: req.0,
            gen,
        });
    }

    /// Has the latest generation of `req` completed? Drains completions.
    pub fn group_test(&self, req: GroupRequest) -> bool {
        self.drain();
        let st = self.st.borrow();
        let g = &st.groups[req.0];
        g.fin_gen >= g.gen
    }

    // ---- internals ----

    fn new_req(&self) -> (usize, u64) {
        let mut st = self.st.borrow_mut();
        st.next_msg_seq += 1;
        let msg_id = ((self.rank as u64) << 32) | st.next_msg_seq;
        st.reqs.push(ReqSlot {
            done: false,
            msg_id,
            error: None,
            replay: None,
        });
        (st.reqs.len() - 1, msg_id)
    }

    /// Allocate a transfer id outside a request slot (group wire entries
    /// share the per-rank namespace with basic requests).
    fn alloc_msg_id(&self) -> u64 {
        let mut st = self.st.borrow_mut();
        st.next_msg_seq += 1;
        ((self.rank as u64) << 32) | st.next_msg_seq
    }

    /// Host-side GVMI registration through the array-of-BSTs cache.
    fn cached_gvmi_reg(&self, addr: VAddr, len: u64) -> MrKey {
        let fab = self.cluster.fabric();
        let gvmi = fab.gvmi_of(self.proxy_ep).expect("proxy has a GVMI");
        if self.cfg.use_gvmi_cache {
            let hit = self
                .st
                .borrow_mut()
                .gvmi_cache
                .get(self.proxy_idx, addr.0, len)
                .copied();
            self.ctx.emit(&ProtoEvent::HostCacheLookup {
                rank: self.rank,
                cache: HostCacheKind::Gvmi,
                outcome: if hit.is_some() {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Miss
                },
            });
            if let Some(k) = hit {
                self.ctx.stat_incr("offload.gvmi_cache.host.hit", 1);
                return k;
            }
            self.ctx.stat_incr("offload.gvmi_cache.host.miss", 1);
        }
        let mkey = fab
            .reg_mr_gvmi(&self.ctx, self.ep, addr, len, gvmi)
            .expect("GVMI registration of a valid buffer");
        if self.cfg.use_gvmi_cache {
            let evicted = self
                .st
                .borrow_mut()
                .gvmi_cache
                .insert(self.proxy_idx, addr.0, len, mkey);
            if evicted.is_some() {
                self.ctx.emit(&ProtoEvent::CacheEvicted {
                    rank: self.rank,
                    side: CacheSide::HostGvmi,
                });
            }
        }
        mkey
    }

    /// Host-side IB registration through the cache.
    fn cached_ib_reg(&self, addr: VAddr, len: u64) -> MrKey {
        if self.cfg.use_gvmi_cache {
            let hit = self.st.borrow_mut().ib_cache.get(0, addr.0, len).copied();
            self.ctx.emit(&ProtoEvent::HostCacheLookup {
                rank: self.rank,
                cache: HostCacheKind::Ib,
                outcome: if hit.is_some() {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Miss
                },
            });
            if let Some(k) = hit {
                self.ctx.stat_incr("offload.ib_cache.host.hit", 1);
                return k;
            }
            self.ctx.stat_incr("offload.ib_cache.host.miss", 1);
        }
        let key = self
            .cluster
            .fabric()
            .reg_mr(&self.ctx, self.ep, addr, len)
            .expect("IB registration of a valid buffer");
        if self.cfg.use_gvmi_cache {
            let evicted = self.st.borrow_mut().ib_cache.insert(0, addr.0, len, key);
            if evicted.is_some() {
                self.ctx.emit(&ProtoEvent::CacheEvicted {
                    rank: self.rank,
                    side: CacheSide::HostIb,
                });
            }
        }
        key
    }

    /// First-call phase of a group request: register everything, gather
    /// receive metadata from the peers my sends target, and build the wire
    /// entries (paper Fig. 9).
    fn build_wire(&self, req: GroupRequest) {
        let ops = self.st.borrow().groups[req.0].ops.clone();
        // Register send buffers (GVMI cache) and receive buffers (IB cache).
        let mut send_keys = Vec::new();
        let mut recv_keys = Vec::new();
        for op in &ops {
            match op {
                GroupOp::Send { addr, len, .. } => match self.cfg.data_path {
                    DataPath::Gvmi => {
                        let mkey = Some(self.cached_gvmi_reg(*addr, *len));
                        // With registration failure armed, also carry an
                        // rkey so the proxy can stage this entry instead.
                        let rkey = self
                            .cfg
                            .fault
                            .fallback_enabled()
                            .then(|| self.cached_ib_reg(*addr, *len));
                        send_keys.push((mkey, rkey))
                    }
                    DataPath::Staging => {
                        send_keys.push((None, Some(self.cached_ib_reg(*addr, *len))))
                    }
                },
                GroupOp::Recv { addr, len, .. } => {
                    recv_keys.push(self.cached_ib_reg(*addr, *len));
                    send_keys.push((None, None));
                }
                GroupOp::Barrier => send_keys.push((None, None)),
            }
        }
        // Send my receive metadata to each source rank (sorted by rank so
        // posting order — and therefore timing — is deterministic).
        let mut per_src: std::collections::BTreeMap<usize, Vec<MetaEntry>> =
            std::collections::BTreeMap::new();
        let mut rk = 0usize;
        for op in &ops {
            if let GroupOp::Recv { addr, src, tag, .. } = op {
                per_src
                    .entry(*src)
                    .or_default()
                    .push((*tag, *addr, recv_keys[rk]));
                rk += 1;
            }
        }
        for (src, entries) in per_src {
            let n = entries.len() as u64;
            self.post_ctrl(
                self.cluster.host_ep(src),
                self.cfg.ctrl_bytes + self.cfg.entry_bytes * n,
                CtrlMsg::RecvMeta {
                    dst_rank: self.rank,
                    dst_req_id: req.0,
                    entries,
                },
                None,
            );
            self.ctx.emit(&ProtoEvent::RecvMetaSent {
                from_rank: self.rank,
                to_rank: src,
                req_id: req.0,
            });
        }
        // Gather metadata from every destination of my sends (sorted, for
        // the same determinism reason).
        let mut needed: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for op in &ops {
            if let GroupOp::Send { dst, .. } = op {
                *needed.entry(*dst).or_insert(0) += 1;
            }
        }
        let mut metas: BTreeMap<usize, (usize, VecDeque<MetaEntry>)> = BTreeMap::new();
        for (&dst, &cnt) in &needed {
            loop {
                let got = {
                    let mut st = self.st.borrow_mut();
                    st.metas_from
                        .get_mut(&dst)
                        .and_then(|q| q.queue.pop_front())
                };
                if let Some((dst_req_id, entries)) = got {
                    assert!(
                        entries.len() >= cnt,
                        "peer {dst} granted {} buffers, need {cnt}",
                        entries.len()
                    );
                    metas.insert(dst, (dst_req_id, entries.into_iter().collect()));
                    break;
                }
                let msg = self.chan.next_blocking(&self.ctx);
                self.handle(msg);
            }
        }
        // Match each send with the destination's next receive entry of the
        // same tag (paper: "matched ... based on destination rank, tag").
        let mut wire = Vec::with_capacity(ops.len());
        for (sk, op) in ops.iter().enumerate() {
            match op {
                GroupOp::Send {
                    addr,
                    len,
                    dst,
                    tag,
                } => {
                    let (dst_req_id, entries) = metas.get_mut(dst).expect("meta gathered");
                    let pos = entries
                        .iter()
                        .position(|(t, _, _)| t == tag)
                        .unwrap_or_else(|| panic!("no matching recv at {dst} for tag {tag}"));
                    let (_, dst_addr, dst_rkey) = entries.remove(pos).expect("present");
                    let (mkey, src_rkey) = send_keys[sk];
                    wire.push(WireEntry::Send {
                        addr: *addr,
                        len: *len,
                        mkey: mkey.unwrap_or(MrKey::invalid()),
                        src_rkey: src_rkey.unwrap_or(MrKey::invalid()),
                        dst_rank: *dst,
                        tag: *tag,
                        dst_addr,
                        dst_rkey,
                        dst_req_id: *dst_req_id,
                        msg_id: self.alloc_msg_id(),
                    });
                }
                GroupOp::Recv { src, tag, .. } => {
                    wire.push(WireEntry::Recv {
                        src_rank: *src,
                        tag: *tag,
                    });
                }
                GroupOp::Barrier => wire.push(WireEntry::Barrier),
            }
        }
        self.st.borrow_mut().groups[req.0].wire = Some(wire);
    }

    fn send_group_packet(&self, req: GroupRequest, gen: u64) {
        let entries = self.st.borrow().groups[req.0]
            .wire
            .clone()
            .expect("wire built");
        let n = entries.len() as u64;
        self.post_ctrl(
            self.proxy_ep,
            self.cfg.ctrl_bytes + self.cfg.entry_bytes * n,
            CtrlMsg::GroupPacket {
                key: GroupKey {
                    host_rank: self.rank,
                    req_id: req.0,
                },
                gen,
                entries,
                host_pid: self.ctx.pid(),
            },
            None,
        );
        self.ctx.emit(&ProtoEvent::GroupPacketSent {
            host_rank: self.rank,
            req_id: req.0,
        });
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        self.ctx.stat_incr("offload.group.packets", 1);
    }

    fn send_group_exec(&self, req: GroupRequest, gen: u64) {
        self.post_ctrl(
            self.proxy_ep,
            self.cfg.ctrl_bytes,
            CtrlMsg::GroupExec {
                key: GroupKey {
                    host_rank: self.rank,
                    req_id: req.0,
                },
                gen,
            },
            None,
        );
        self.ctx.emit(&ProtoEvent::GroupExecSent {
            host_rank: self.rank,
            req_id: req.0,
            gen,
        });
        self.ctx.stat_incr("offload.ctrl.host_dpu", 1);
        self.ctx.stat_incr("offload.group.execs", 1);
    }

    /// Drain pending completions without blocking.
    fn drain(&self) {
        while let Some(msg) = self.chan.try_next(&self.ctx) {
            self.handle(msg);
        }
    }

    fn handle(&self, msg: NetMsg) {
        let decoded = match msg {
            NetMsg::Packet(p) => p.body.downcast::<CtrlMsg>().ok().map(|b| *b),
            NetMsg::Notify(b) => b.downcast::<CtrlMsg>().ok().map(|b| *b),
            NetMsg::Cqe(_) => return, // unsignaled paths only
        };
        let Some(body) = decoded else {
            // Not a control message despite the channel predicate: count
            // and drop rather than crashing the rank.
            self.ctx.stat_incr("offload.host.bad_ctrl", 1);
            self.ctx.emit(&ProtoEvent::CtrlDropped {
                at_proxy: false,
                kind: CtrlKind::Unknown,
                msg_id: 0,
            });
            return;
        };
        // Reliability plumbing first: unwrap envelopes (ack + dedup),
        // retire acks, service retransmission timers. None of these count
        // as host wakeups — they exist only under a fault plan.
        let body = match body {
            CtrlMsg::Seq {
                seq,
                from,
                from_ep,
                epoch,
                inner,
            } => {
                let fab = self.cluster.fabric();
                let accepted = self
                    .st
                    .borrow_mut()
                    .rel
                    .on_seq(&self.ctx, fab, seq, from, from_ep, epoch, *inner);
                match accepted {
                    Some(inner) => inner,
                    None => return, // duplicate
                }
            }
            CtrlMsg::Ack { seq } => {
                self.st.borrow_mut().rel.on_ack(seq);
                return;
            }
            CtrlMsg::RetxTick { seq } => {
                let fab = self.cluster.fabric();
                let outcome = self.st.borrow_mut().rel.on_tick(&self.ctx, fab, seq);
                if let TickOutcome::Abandoned {
                    msg_id,
                    attempts,
                    req,
                } = outcome
                {
                    self.fail_req(req, msg_id, attempts);
                }
                return;
            }
            other => other,
        };
        let mut finished_msg = None;
        match body {
            CtrlMsg::FinSend { req, .. } | CtrlMsg::FinRecv { req, .. } => {
                let mut st = self.st.borrow_mut();
                match st.reqs.get_mut(req) {
                    // Exactly-once completion: a FIN for an already-done
                    // request (replayed work after a proxy restart) must
                    // not re-complete it or re-emit `HostReqDone`.
                    Some(slot) if slot.done => {
                        drop(st);
                        self.ctx.stat_incr("offload.reliable.dup_fins", 1);
                        return;
                    }
                    Some(slot) => {
                        slot.done = true;
                        slot.replay = None;
                        finished_msg = Some(slot.msg_id);
                    }
                    None => {
                        drop(st);
                        self.ctx.stat_incr("offload.host.bad_ctrl", 1);
                        return;
                    }
                }
            }
            CtrlMsg::RecvMeta {
                dst_rank,
                dst_req_id,
                entries,
            } => {
                let mut st = self.st.borrow_mut();
                st.metas_from
                    .entry(dst_rank)
                    .or_insert_with(|| MetaQueue {
                        queue: VecDeque::new(),
                    })
                    .queue
                    .push_back((dst_req_id, entries));
            }
            CtrlMsg::GroupFin { req_id, gen } => {
                let mut st = self.st.borrow_mut();
                let g = &mut st.groups[req_id];
                // `max` keeps duplicate group FINs idempotent.
                g.fin_gen = g.fin_gen.max(gen);
            }
            CtrlMsg::ProxyRestarted { proxy, epoch } => {
                self.on_proxy_restarted(proxy, epoch);
            }
            other => panic!(
                "unexpected control message on host {}: {other:?}",
                self.rank
            ),
        }
        // The host CPU just spent cycles on the offload plane. If work is
        // still outstanding after applying the message, this was a genuine
        // mid-operation intervention (the paper's overlap killer); a
        // terminal completion notice is a plain wakeup.
        let outstanding = {
            let st = self.st.borrow();
            st.reqs.iter().any(|r| !r.done) || st.groups.iter().any(|g| g.fin_gen < g.gen)
        };
        self.ctx.stat_incr("offload.host.wakeups", 1);
        if outstanding {
            self.ctx.stat_incr("offload.host.interventions", 1);
        }
        self.ctx.emit(&ProtoEvent::HostWakeup {
            rank: self.rank,
            intervention: outstanding,
        });
        // FIN observed: close the transfer's causal timeline. Emitted
        // after the wakeup so observers see intervention classification
        // and completion at the same instant, in a fixed order.
        if let Some(msg_id) = finished_msg {
            self.ctx.emit(&ProtoEvent::HostReqDone {
                rank: self.rank,
                msg_id,
                more_outstanding: outstanding,
            });
        }
    }

    /// Surface a permanent ctrl-plane failure on a request slot.
    fn fail_req(&self, req: Option<usize>, msg_id: u64, attempts: u32) {
        let Some(req) = req else { return };
        {
            let mut st = self.st.borrow_mut();
            let slot = &mut st.reqs[req];
            if slot.done || slot.error.is_some() {
                return;
            }
            slot.error = Some(OffloadError::CtrlUndeliverable { msg_id, attempts });
        }
        self.ctx.stat_incr("offload.reliable.req_failures", 1);
        self.ctx.emit(&ProtoEvent::ReqFailed {
            rank: self.rank,
            msg_id,
            attempts,
        });
    }

    /// Proxy-restart recovery (DESIGN.md §13): on the first notice of a
    /// higher epoch, invalidate everything the crashed proxy held on our
    /// behalf — the GVMI registration cache (its cross-registrations
    /// died) and the group metadata caches — then replay every in-flight
    /// basic request and group generation that targeted it.
    fn on_proxy_restarted(&self, proxy: EpId, epoch: u64) {
        {
            let mut st = self.st.borrow_mut();
            let known = st.proxy_epochs.entry(proxy.index()).or_insert(0);
            if epoch <= *known {
                return; // stale or duplicate notice
            }
            *known = epoch;
        }
        self.ctx.stat_incr("offload.reliable.restarts_seen", 1);
        if proxy == self.proxy_ep {
            let n_proxies = self.cluster.proxies_per_dpu();
            let mut st = self.st.borrow_mut();
            st.gvmi_cache = RankAddrCache::new(n_proxies);
            for g in &mut st.groups {
                g.proxy_cached = false;
            }
        }
        // Replay in-flight basic requests addressed to the restarted
        // proxy. The proxy's completion journal survives the crash, so a
        // request whose FIN raced the crash is answered directly instead
        // of re-executed.
        let replays: Vec<(usize, EpId, CtrlMsg)> = {
            let st = self.st.borrow();
            st.reqs
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.done && s.error.is_none())
                .filter_map(|(i, s)| s.replay.as_ref().map(|(to, m)| (i, *to, m.clone())))
                .filter(|(_, to, _)| *to == proxy)
                .collect()
        };
        for (req, to, msg) in replays {
            let msg_id = self.st.borrow().reqs[req].msg_id;
            self.ctx.stat_incr("offload.reliable.replays", 1);
            self.ctx.emit(&ProtoEvent::ReqReplayed {
                rank: self.rank,
                msg_id,
            });
            self.post_ctrl(to, self.cfg.ctrl_bytes, msg, Some(req));
        }
        // Re-ship in-flight group generations: the proxy's instances and
        // metadata cache died with it, so send the full packet again
        // (which restarts the generation) and mark the cache warm.
        if proxy == self.proxy_ep {
            let inflight: Vec<(usize, u64)> = {
                let st = self.st.borrow();
                st.groups
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.wire.is_some() && g.gen > g.fin_gen)
                    .map(|(i, g)| (i, g.gen))
                    .collect()
            };
            for (req_id, gen) in inflight {
                self.ctx.stat_incr("offload.reliable.replays", 1);
                self.ctx.emit(&ProtoEvent::ReqReplayed {
                    rank: self.rank,
                    msg_id: 0,
                });
                self.send_group_packet(GroupRequest(req_id), gen);
                self.st.borrow_mut().groups[req_id].proxy_cached = true;
            }
        }
    }
}
