//! Registration caches for cross-GVMI transfers (paper §VII-B).
//!
//! The paper's design: *"we use an array of Binary Search Trees to
//! represent the registration cache of both the host and DPU sides. The
//! array is indexed by remote rank and the BST is indexed by memory
//! address."* A cache hit returns the stored key; a miss triggers the
//! (expensive) registration and inserts the entry.
//!
//! The same structure serves three roles:
//! * host-side GVMI cache: `(remote proxy rank) × (addr, size) → mkey`;
//! * host-side IB cache: `(remote rank) × (addr, size) → rkey`;
//! * DPU-side cross-registration cache:
//!   `(host rank) × (addr, size) → (mkey, mkey2)` — the stored `mkey` is
//!   validated against the one the host supplies, since a re-registered
//!   buffer would produce a fresh mkey (the paper argues this cannot
//!   happen for a fixed `(addr, size, GVMI)`; we check anyway and treat a
//!   mismatch as a miss).

use std::collections::BTreeMap;

use crate::events::CacheOutcome;

/// Two-level registration cache: an array indexed by rank, each slot a
/// search tree keyed by `(address, size)`.
///
/// Optionally bounded: a real registration cache pins memory with the
/// HCA, so production MPIs cap the number of cached registrations and
/// evict least-recently-used entries. [`RankAddrCache::with_capacity`]
/// enables that behaviour; the default is unbounded (the paper's
/// description).
#[derive(Debug)]
pub struct RankAddrCache<V> {
    per_rank: Vec<BTreeMap<(u64, u64), V>>,
    /// Monotone use clock and per-entry last-use stamps (only maintained
    /// when a capacity is set).
    capacity: Option<usize>,
    clock: u64,
    last_use: BTreeMap<(usize, u64, u64), u64>,
    /// Pin refcounts: entries with a positive count back in-flight
    /// transfers and are never chosen for capacity eviction.
    pinned: BTreeMap<(usize, u64, u64), u32>,
    hits: u64,
    misses: u64,
    stale: u64,
    evictions: u64,
}

impl<V> RankAddrCache<V> {
    /// Cache with slots for `ranks` remote ranks, unbounded.
    pub fn new(ranks: usize) -> Self {
        RankAddrCache {
            per_rank: (0..ranks).map(|_| BTreeMap::new()).collect(),
            capacity: None,
            clock: 0,
            last_use: BTreeMap::new(),
            pinned: BTreeMap::new(),
            hits: 0,
            misses: 0,
            stale: 0,
            evictions: 0,
        }
    }

    /// Bound the total entry count; inserting past the bound evicts the
    /// least-recently-used entry (whose registration the caller should
    /// deregister).
    pub fn with_capacity(ranks: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let mut c = Self::new(ranks);
        c.capacity = Some(capacity);
        c
    }

    fn touch(&mut self, rank: usize, addr: u64, size: u64) {
        if self.capacity.is_some() {
            self.clock += 1;
            self.last_use.insert((rank, addr, size), self.clock);
        }
    }

    /// Look up `(rank, addr, size)`, counting a hit or miss.
    pub fn get(&mut self, rank: usize, addr: u64, size: u64) -> Option<&V> {
        if self.per_rank[rank].contains_key(&(addr, size)) {
            self.hits += 1;
            self.touch(rank, addr, size);
            self.per_rank[rank].get(&(addr, size))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Look up with a validity predicate: an entry failing `valid` is
    /// evicted and counted as *stale* (plus a miss).
    pub fn get_validated(
        &mut self,
        rank: usize,
        addr: u64,
        size: u64,
        valid: impl FnOnce(&V) -> bool,
    ) -> Option<&V> {
        crate::profile_scope!("cache_lookup");
        let entry_ok = match self.per_rank[rank].get(&(addr, size)) {
            Some(v) => valid(v),
            None => false,
        };
        if entry_ok {
            self.hits += 1;
            self.touch(rank, addr, size);
            self.per_rank[rank].get(&(addr, size))
        } else {
            if self.per_rank[rank].remove(&(addr, size)).is_some() {
                self.last_use.remove(&(rank, addr, size));
                self.pinned.remove(&(rank, addr, size));
                self.stale += 1;
            }
            self.misses += 1;
            None
        }
    }

    /// Like [`RankAddrCache::get_validated`], but also reports whether
    /// the lookup was a hit, a clean miss, or a stale eviction — the
    /// distinction the conformance checker's cache-coherence invariant
    /// observes through [`crate::ProtoEvent::CrossRegCacheLookup`].
    pub fn get_validated_outcome(
        &mut self,
        rank: usize,
        addr: u64,
        size: u64,
        valid: impl FnOnce(&V) -> bool,
    ) -> (Option<&V>, CacheOutcome) {
        let present = self.per_rank[rank].contains_key(&(addr, size));
        let stale_before = self.stale;
        let found = self.get_validated(rank, addr, size, valid).is_some();
        let outcome = if found {
            CacheOutcome::Hit
        } else if present && self.stale > stale_before {
            CacheOutcome::Stale
        } else {
            CacheOutcome::Miss
        };
        (
            self.per_rank[rank].get(&(addr, size)).filter(|_| found),
            outcome,
        )
    }

    /// Insert (or replace) an entry. With a capacity set, this may evict
    /// the least-recently-used entry, which is returned so the caller can
    /// deregister it.
    pub fn insert(
        &mut self,
        rank: usize,
        addr: u64,
        size: u64,
        v: V,
    ) -> Option<(usize, u64, u64, V)> {
        let mut evicted = None;
        if let Some(cap) = self.capacity {
            let new_entry = !self.per_rank[rank].contains_key(&(addr, size));
            if new_entry && self.len() >= cap {
                // Evict the stalest *unpinned* entry. With every entry
                // pinned the cache grows past its budget instead — the
                // overshoot is bounded by the number of in-flight
                // transfers, and dropping a live registration would be
                // worse (the invariant eviction must never violate).
                if let Some((&(r, a, s), _)) = self
                    .last_use
                    .iter()
                    .filter(|(k, _)| !self.pinned.contains_key(*k))
                    .min_by_key(|(_, &used)| used)
                {
                    let val = self.per_rank[r]
                        .remove(&(a, s))
                        .expect("indexed entry exists");
                    self.last_use.remove(&(r, a, s));
                    self.evictions += 1;
                    evicted = Some((r, a, s, val));
                }
            }
        }
        self.per_rank[rank].insert((addr, size), v);
        self.touch(rank, addr, size);
        evicted
    }

    /// Remove an entry, returning it. Explicit removal (and stale
    /// eviction) trumps pinning: the registration is gone, so any pin
    /// record is dropped with the entry.
    pub fn evict(&mut self, rank: usize, addr: u64, size: u64) -> Option<V> {
        self.last_use.remove(&(rank, addr, size));
        self.pinned.remove(&(rank, addr, size));
        self.per_rank[rank].remove(&(addr, size))
    }

    /// Pin an entry (refcounted) so capacity eviction skips it while a
    /// transfer is in flight. Returns whether the entry was present.
    pub fn pin(&mut self, rank: usize, addr: u64, size: u64) -> bool {
        if self.per_rank[rank].contains_key(&(addr, size)) {
            *self.pinned.entry((rank, addr, size)).or_insert(0) += 1;
            true
        } else {
            false
        }
    }

    /// Drop one pin reference; a no-op if the entry is gone or unpinned.
    pub fn unpin(&mut self, rank: usize, addr: u64, size: u64) {
        if let Some(c) = self.pinned.get_mut(&(rank, addr, size)) {
            *c -= 1;
            if *c == 0 {
                self.pinned.remove(&(rank, addr, size));
            }
        }
    }

    /// Whether an entry currently holds at least one pin.
    pub fn is_pinned(&self, rank: usize, addr: u64, size: u64) -> bool {
        self.pinned.contains_key(&(rank, addr, size))
    }

    /// Number of capacity evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total number of cached entries.
    pub fn len(&self) -> usize {
        self.per_rank.iter().map(|t| t.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses, stale)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c: RankAddrCache<u64> = RankAddrCache::new(4);
        assert!(c.get(1, 0x1000, 64).is_none());
        c.insert(1, 0x1000, 64, 99);
        assert_eq!(c.get(1, 0x1000, 64), Some(&99));
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn ranks_are_isolated() {
        let mut c: RankAddrCache<u64> = RankAddrCache::new(2);
        c.insert(0, 0x1000, 64, 1);
        assert!(c.get(1, 0x1000, 64).is_none());
        assert_eq!(c.get(0, 0x1000, 64), Some(&1));
    }

    #[test]
    fn size_is_part_of_key() {
        let mut c: RankAddrCache<u64> = RankAddrCache::new(1);
        c.insert(0, 0x1000, 64, 1);
        c.insert(0, 0x1000, 128, 2);
        assert_eq!(c.get(0, 0x1000, 64), Some(&1));
        assert_eq!(c.get(0, 0x1000, 128), Some(&2));
    }

    #[test]
    fn validation_evicts_stale_entries() {
        let mut c: RankAddrCache<(u64, u64)> = RankAddrCache::new(1);
        c.insert(0, 0x2000, 32, (7, 70)); // (mkey, mkey2)
                                          // Host now presents mkey 8: stored entry is stale.
        assert!(c
            .get_validated(0, 0x2000, 32, |(mkey, _)| *mkey == 8)
            .is_none());
        assert_eq!(c.stats(), (0, 1, 1));
        assert!(c.is_empty());
        // Re-insert with the new mkey and validate again.
        c.insert(0, 0x2000, 32, (8, 80));
        assert_eq!(
            c.get_validated(0, 0x2000, 32, |(mkey, _)| *mkey == 8),
            Some(&(8, 80))
        );
    }

    #[test]
    fn evict_removes() {
        let mut c: RankAddrCache<u64> = RankAddrCache::new(1);
        c.insert(0, 1, 1, 5);
        assert_eq!(c.evict(0, 1, 1), Some(5));
        assert!(c.get(0, 1, 1).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn lru_capacity_evicts_stalest() {
        let mut c: RankAddrCache<u64> = RankAddrCache::with_capacity(2, 3);
        assert!(c.insert(0, 1, 1, 10).is_none());
        assert!(c.insert(0, 2, 1, 20).is_none());
        assert!(c.insert(1, 3, 1, 30).is_none());
        // Touch (0,1,1) so (0,2,1) becomes the LRU entry.
        assert_eq!(c.get(0, 1, 1), Some(&10));
        let evicted = c.insert(1, 4, 1, 40).expect("capacity eviction");
        assert_eq!(evicted, (0, 2, 1, 20));
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(0, 2, 1).is_none(), "evicted entry gone");
        assert_eq!(c.get(1, 4, 1), Some(&40));
    }

    #[test]
    fn lru_replacing_existing_key_does_not_evict() {
        let mut c: RankAddrCache<u64> = RankAddrCache::with_capacity(1, 2);
        c.insert(0, 1, 1, 1);
        c.insert(0, 2, 2, 2);
        // Overwrite in place at capacity: no eviction.
        assert!(c.insert(0, 1, 1, 9).is_none());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0, 1, 1), Some(&9));
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c: RankAddrCache<u64> = RankAddrCache::new(1);
        for i in 0..1000 {
            assert!(c.insert(0, i, 1, i).is_none());
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn len_counts_across_ranks() {
        let mut c: RankAddrCache<u64> = RankAddrCache::new(3);
        c.insert(0, 1, 1, 1);
        c.insert(1, 1, 1, 1);
        c.insert(2, 2, 2, 2);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn pinned_entries_survive_capacity_pressure() {
        let mut c: RankAddrCache<u64> = RankAddrCache::with_capacity(1, 2);
        c.insert(0, 1, 1, 10);
        c.insert(0, 2, 1, 20);
        assert!(c.pin(0, 1, 1));
        assert!(c.pin(0, 2, 1));
        // Both entries pinned: inserting past the cap evicts nothing.
        assert!(c.insert(0, 3, 1, 30).is_none());
        assert_eq!(c.len(), 3);
        // Unpin one; the next overflow insert evicts exactly it.
        c.unpin(0, 1, 1);
        let evicted = c.insert(0, 4, 1, 40).expect("eviction");
        assert_eq!(evicted, (0, 1, 1, 10));
        assert!(c.is_pinned(0, 2, 1));
        assert_eq!(c.get(0, 2, 1), Some(&20));
    }

    #[test]
    fn pin_is_refcounted_and_missing_entries_unpinnable() {
        let mut c: RankAddrCache<u64> = RankAddrCache::with_capacity(1, 1);
        assert!(!c.pin(0, 9, 9), "absent entry cannot be pinned");
        c.insert(0, 1, 1, 1);
        assert!(c.pin(0, 1, 1));
        assert!(c.pin(0, 1, 1));
        c.unpin(0, 1, 1);
        assert!(c.is_pinned(0, 1, 1), "one reference still held");
        c.unpin(0, 1, 1);
        assert!(!c.is_pinned(0, 1, 1));
        c.unpin(0, 1, 1); // extra unpin is a no-op
        let evicted = c.insert(0, 2, 1, 2).expect("now evictable");
        assert_eq!(evicted.3, 1);
    }

    #[test]
    fn outcome_lookup_classifies_hit_miss_stale() {
        let mut c: RankAddrCache<(u64, u64)> = RankAddrCache::new(1);
        let (v, o) = c.get_validated_outcome(0, 0x10, 8, |_| true);
        assert!(v.is_none());
        assert_eq!(o, CacheOutcome::Miss);
        c.insert(0, 0x10, 8, (7, 70));
        let (v, o) = c.get_validated_outcome(0, 0x10, 8, |(m, _)| *m == 7);
        assert_eq!(v, Some(&(7, 70)));
        assert_eq!(o, CacheOutcome::Hit);
        let (v, o) = c.get_validated_outcome(0, 0x10, 8, |(m, _)| *m == 8);
        assert!(v.is_none());
        assert_eq!(o, CacheOutcome::Stale);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap as Model;

    /// A small operation language over the cache, mirrored against a
    /// plain map model.
    #[derive(Clone, Debug)]
    enum Op {
        Insert {
            rank: usize,
            addr: u64,
            size: u64,
            v: u64,
        },
        Get {
            rank: usize,
            addr: u64,
            size: u64,
        },
        Evict {
            rank: usize,
            addr: u64,
            size: u64,
        },
        Pin {
            rank: usize,
            addr: u64,
            size: u64,
        },
        Unpin {
            rank: usize,
            addr: u64,
            size: u64,
        },
    }

    const RANKS: usize = 4;

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Small key domains so lookups overlap with earlier inserts, and
        // overlapping (addr, size) pairs sharing an addr stay distinct.
        let key = (0usize..RANKS, 0u64..6, 1u64..4);
        prop_oneof![
            (key.clone(), 0u64..1000).prop_map(|((rank, addr, size), v)| Op::Insert {
                rank,
                addr,
                size,
                v
            }),
            key.clone()
                .prop_map(|(rank, addr, size)| Op::Get { rank, addr, size }),
            key.clone()
                .prop_map(|(rank, addr, size)| Op::Evict { rank, addr, size }),
            key.clone()
                .prop_map(|(rank, addr, size)| Op::Pin { rank, addr, size }),
            key.prop_map(|(rank, addr, size)| Op::Unpin { rank, addr, size }),
        ]
    }

    proptest! {
        /// The unbounded cache behaves exactly like a map keyed by the
        /// full (rank, addr, size) triple: ranks are isolated (the
        /// array-of-BSTs index) and (addr, size) pairs that overlap in
        /// memory but differ in either component are distinct entries.
        #[test]
        fn unbounded_cache_matches_map_model(ops in prop::collection::vec(op_strategy(), 1..64)) {
            let mut cache: RankAddrCache<u64> = RankAddrCache::new(RANKS);
            let mut model: Model<(usize, u64, u64), u64> = Model::new();
            let (mut hits, mut misses) = (0u64, 0u64);
            for op in &ops {
                match *op {
                    Op::Insert { rank, addr, size, v } => {
                        prop_assert!(cache.insert(rank, addr, size, v).is_none());
                        model.insert((rank, addr, size), v);
                    }
                    Op::Get { rank, addr, size } => {
                        let got = cache.get(rank, addr, size).copied();
                        let want = model.get(&(rank, addr, size)).copied();
                        prop_assert_eq!(got, want);
                        if want.is_some() { hits += 1 } else { misses += 1 }
                    }
                    Op::Evict { rank, addr, size } => {
                        let got = cache.evict(rank, addr, size);
                        let want = model.remove(&(rank, addr, size));
                        prop_assert_eq!(got, want);
                    }
                    // Pins are inert without a capacity: they must not
                    // perturb contents or hit/miss accounting.
                    Op::Pin { rank, addr, size } => {
                        let pinned = cache.pin(rank, addr, size);
                        prop_assert_eq!(pinned, model.contains_key(&(rank, addr, size)));
                    }
                    Op::Unpin { rank, addr, size } => cache.unpin(rank, addr, size),
                }
            }
            prop_assert_eq!(cache.len(), model.len());
            let (h, m, s) = cache.stats();
            prop_assert_eq!((h, m, s), (hits, misses, 0));
        }

        /// A bounded cache stays within its capacity (unless pins force
        /// a bounded overshoot), never evicts a pinned entry, and
        /// everything it still holds agrees with the model.
        #[test]
        fn bounded_cache_respects_capacity_and_pins(
            cap in 1usize..8,
            ops in prop::collection::vec(op_strategy(), 1..64),
        ) {
            let mut cache: RankAddrCache<u64> = RankAddrCache::with_capacity(RANKS, cap);
            let mut model: Model<(usize, u64, u64), u64> = Model::new();
            let mut pins: Model<(usize, u64, u64), u32> = Model::new();
            let mut pinned_ever = false;
            for op in &ops {
                match *op {
                    Op::Insert { rank, addr, size, v } => {
                        if let Some((r, a, s, _)) = cache.insert(rank, addr, size, v) {
                            prop_assert!(
                                !pins.contains_key(&(r, a, s)),
                                "capacity eviction removed a pinned entry"
                            );
                            model.remove(&(r, a, s));
                        }
                        model.insert((rank, addr, size), v);
                    }
                    Op::Get { rank, addr, size } => {
                        let got = cache.get(rank, addr, size).copied();
                        prop_assert_eq!(got, model.get(&(rank, addr, size)).copied());
                    }
                    Op::Evict { rank, addr, size } => {
                        let got = cache.evict(rank, addr, size);
                        prop_assert_eq!(got, model.remove(&(rank, addr, size)));
                        // Explicit removal drops any pin with the entry.
                        pins.remove(&(rank, addr, size));
                    }
                    Op::Pin { rank, addr, size } => {
                        if cache.pin(rank, addr, size) {
                            prop_assert!(model.contains_key(&(rank, addr, size)));
                            *pins.entry((rank, addr, size)).or_insert(0) += 1;
                            pinned_ever = true;
                        } else {
                            prop_assert!(!model.contains_key(&(rank, addr, size)));
                        }
                    }
                    Op::Unpin { rank, addr, size } => {
                        cache.unpin(rank, addr, size);
                        if let Some(c) = pins.get_mut(&(rank, addr, size)) {
                            *c -= 1;
                            if *c == 0 {
                                pins.remove(&(rank, addr, size));
                            }
                        }
                    }
                }
                // Pins can force a bounded overshoot; without any pin in
                // the history the cap is strict.
                prop_assert!(cache.len() <= cap || pinned_ever);
                prop_assert_eq!(cache.len(), model.len());
                // Every pinned entry is still resident.
                for &(r, a, s) in pins.keys() {
                    prop_assert!(cache.is_pinned(r, a, s));
                    prop_assert_eq!(
                        cache.get(r, a, s).copied(),
                        model.get(&(r, a, s)).copied()
                    );
                }
            }
        }

        /// Validated lookups agree with plain lookups when the predicate
        /// accepts, and evict exactly the probed entry when it rejects.
        #[test]
        fn stale_eviction_removes_only_probed_entry(
            ops in prop::collection::vec(op_strategy(), 1..48),
            probe_rank in 0usize..RANKS,
            probe_addr in 0u64..6,
            probe_size in 1u64..4,
        ) {
            let mut cache: RankAddrCache<u64> = RankAddrCache::new(RANKS);
            let mut model: Model<(usize, u64, u64), u64> = Model::new();
            for op in &ops {
                if let Op::Insert { rank, addr, size, v } = *op {
                    cache.insert(rank, addr, size, v);
                    model.insert((rank, addr, size), v);
                }
            }
            let (_, outcome) =
                cache.get_validated_outcome(probe_rank, probe_addr, probe_size, |_| false);
            let had = model.remove(&(probe_rank, probe_addr, probe_size)).is_some();
            prop_assert_eq!(outcome, if had { CacheOutcome::Stale } else { CacheOutcome::Miss });
            // Every other entry survives untouched.
            for (&(r, a, s), &v) in &model {
                prop_assert_eq!(cache.get(r, a, s).copied(), Some(v));
            }
            prop_assert_eq!(cache.len(), model.len());
        }
    }
}
