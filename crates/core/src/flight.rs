//! Always-on bounded flight recorder for [`ProtoEvent`] streams.
//!
//! A [`FlightRecorder`] is an [`EventSink`] that keeps the most recent
//! events *per emitting process* (rank or proxy) in fixed-size ring
//! buffers — cheap enough to leave on for every checker run, yet enough
//! context to reconstruct what the protocol was doing when a schedule
//! exploration shrinks a failure. The `checker` crate installs one next
//! to its conformance sink and writes [`FlightRecorder::dump`] into
//! `target/failure-dumps/` whenever a scenario fails.
//!
//! The dump is a line-oriented text format that round-trips:
//! [`parse_flight_dump`] reads it back into records and [`replay_into`]
//! feeds them to any sink — e.g. a fresh conformance checker, which must
//! reach the same verdict as the live run (asserted in the checker's
//! tests). One event per line:
//!
//! ```text
//! at_ps=1234567 pid=3 ev=WritePosted wrid=216172782113783809 bytes=8192 path=CrossGvmi msg_id=4294967297
//! ```
//!
//! Lines starting with `#` are comments (the checker prepends scenario
//! metadata); blank lines are skipped. Field order within a line is
//! fixed by the writer but the parser is keyed, so hand-edited dumps
//! stay readable.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use rdma::{MrKey, VAddr};
use simnet::{EventSink, Pid, SimTime};

use crate::events::{
    CacheOutcome, CacheSide, CtrlKind, FinKind, HealthPath, HostCacheKind, PathKind, ProtoEvent,
    ReqDir,
};

/// One recorded emission: when, by whom, what.
#[derive(Clone, Debug)]
pub struct FlightRecord {
    /// Simulated instant of the emission.
    pub at: SimTime,
    /// Emitting process.
    pub pid: Pid,
    /// The event.
    pub event: ProtoEvent,
}

struct FlightInner {
    cap: usize,
    seq: u64,
    /// Ring per emitting pid. `BTreeMap` so merged dumps are ordered
    /// deterministically (hash-iteration order is banned in this crate).
    rings: BTreeMap<usize, VecDeque<(u64, FlightRecord)>>,
    dropped: u64,
}

/// Bounded per-process ring buffer of recent [`ProtoEvent`]s.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// Default capacity: enough for the checker's smoke workloads to be
    /// retained end to end, small enough to stay always-on.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Recorder with [`Self::DEFAULT_CAPACITY`] events per process.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Recorder keeping at most `cap` recent events per process.
    pub fn with_capacity(cap: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(FlightInner {
                cap: cap.max(1),
                seq: 0,
                rings: BTreeMap::new(),
                dropped: 0,
            })),
        }
    }

    /// The sink to install on a simulation (compose with other sinks via
    /// `workloads::fanout`). Non-`ProtoEvent` emissions are ignored.
    pub fn sink(&self) -> EventSink {
        let inner = Arc::clone(&self.inner);
        Arc::new(move |at: SimTime, pid: Pid, ev: &dyn Any| {
            if let Some(ev) = ev.downcast_ref::<ProtoEvent>() {
                let mut f = inner.lock();
                f.seq += 1;
                let seq = f.seq;
                let cap = f.cap;
                let mut evicted = false;
                {
                    let ring = f.rings.entry(pid.index()).or_default();
                    if ring.len() == cap {
                        ring.pop_front();
                        evicted = true;
                    }
                    ring.push_back((
                        seq,
                        FlightRecord {
                            at,
                            pid,
                            event: ev.clone(),
                        },
                    ));
                }
                if evicted {
                    f.dropped += 1;
                }
            }
        })
    }

    /// Events evicted from full rings so far (0 means the dump is the
    /// complete stream).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// All retained records, merged across processes in emission order.
    pub fn records(&self) -> Vec<FlightRecord> {
        let f = self.inner.lock();
        let mut all: Vec<(u64, FlightRecord)> =
            f.rings.values().flat_map(|r| r.iter().cloned()).collect();
        all.sort_by_key(|&(seq, _)| seq);
        all.into_iter().map(|(_, r)| r).collect()
    }

    /// Render the retained events as the round-trippable text format.
    pub fn dump(&self) -> String {
        let records = self.records();
        let dropped = self.dropped();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# flight-recorder dump: {} events retained, {} evicted",
            records.len(),
            dropped
        );
        for r in &records {
            out.push_str(&render_record(r));
            out.push('\n');
        }
        out
    }
}

fn path_name(p: PathKind) -> &'static str {
    match p {
        PathKind::CrossGvmi => "CrossGvmi",
        PathKind::StagingHop1 => "StagingHop1",
        PathKind::StagingHop2 => "StagingHop2",
    }
}

fn health_path_name(p: HealthPath) -> &'static str {
    match p {
        HealthPath::CrossGvmi => "CrossGvmi",
        HealthPath::Staging => "Staging",
        HealthPath::Ctrl => "Ctrl",
    }
}

/// Parse table for [`HealthPath`] fields, mirroring [`health_path_name`].
const HEALTH_PATHS: &[(&str, HealthPath)] = &[
    ("CrossGvmi", HealthPath::CrossGvmi),
    ("Staging", HealthPath::Staging),
    ("Ctrl", HealthPath::Ctrl),
];

fn fin_name(k: FinKind) -> &'static str {
    match k {
        FinKind::Send => "Send",
        FinKind::Recv => "Recv",
        FinKind::Group => "Group",
    }
}

fn outcome_name(o: CacheOutcome) -> &'static str {
    match o {
        CacheOutcome::Hit => "Hit",
        CacheOutcome::Miss => "Miss",
        CacheOutcome::Stale => "Stale",
    }
}

fn host_cache_name(c: HostCacheKind) -> &'static str {
    match c {
        HostCacheKind::Gvmi => "Gvmi",
        HostCacheKind::Ib => "Ib",
    }
}

fn side_name(s: CacheSide) -> &'static str {
    match s {
        CacheSide::HostGvmi => "HostGvmi",
        CacheSide::HostIb => "HostIb",
        CacheSide::DpuCross => "DpuCross",
    }
}

fn dir_name(d: ReqDir) -> &'static str {
    match d {
        ReqDir::Send => "Send",
        ReqDir::Recv => "Recv",
        ReqDir::OneSided => "OneSided",
    }
}

/// Name table for [`CtrlKind`], shared by the writer and the parser so
/// the two cannot drift apart.
const CTRL_KINDS: &[(&str, CtrlKind)] = &[
    ("Rts", CtrlKind::Rts),
    ("Rtr", CtrlKind::Rtr),
    ("FinSend", CtrlKind::FinSend),
    ("FinRecv", CtrlKind::FinRecv),
    ("RecvMeta", CtrlKind::RecvMeta),
    ("GroupPacket", CtrlKind::GroupPacket),
    ("GroupExec", CtrlKind::GroupExec),
    ("GroupFin", CtrlKind::GroupFin),
    ("BarrierCntr", CtrlKind::BarrierCntr),
    ("GroupArrival", CtrlKind::GroupArrival),
    ("Put", CtrlKind::Put),
    ("Get", CtrlKind::Get),
    ("ShmemHello", CtrlKind::ShmemHello),
    ("Shutdown", CtrlKind::Shutdown),
    ("Seq", CtrlKind::Seq),
    ("Ack", CtrlKind::Ack),
    ("RetxTick", CtrlKind::RetxTick),
    ("ProxyRestarted", CtrlKind::ProxyRestarted),
    ("QueueFull", CtrlKind::QueueFull),
    ("Cancel", CtrlKind::Cancel),
    ("DataError", CtrlKind::DataError),
    ("Unknown", CtrlKind::Unknown),
];

fn ctrl_kind_name(k: CtrlKind) -> &'static str {
    CTRL_KINDS
        .iter()
        .find(|&&(_, v)| v == k)
        .map(|&(name, _)| name)
        .expect("every CtrlKind is in the table")
}

fn opt_key(k: Option<MrKey>) -> String {
    match k {
        Some(k) => k.raw().to_string(),
        None => "-".into(),
    }
}

/// One line per record; see the module docs for the format.
fn render_record(r: &FlightRecord) -> String {
    let mut s = format!("at_ps={} pid={} ", r.at.as_ps(), r.pid.index());
    match &r.event {
        ProtoEvent::HostReqPosted {
            rank,
            msg_id,
            peer,
            tag,
            bytes,
            dir,
        } => {
            let _ = write!(
                s,
                "ev=HostReqPosted rank={rank} msg_id={msg_id} peer={peer} tag={tag} bytes={bytes} dir={}",
                dir_name(*dir)
            );
        }
        ProtoEvent::HostReqDone {
            rank,
            msg_id,
            more_outstanding,
        } => {
            let _ = write!(
                s,
                "ev=HostReqDone rank={rank} msg_id={msg_id} more_outstanding={more_outstanding}"
            );
        }
        ProtoEvent::RtsAtProxy {
            src_rank,
            dst_rank,
            tag,
            msg_id,
        } => {
            let _ = write!(
                s,
                "ev=RtsAtProxy src_rank={src_rank} dst_rank={dst_rank} tag={tag} msg_id={msg_id}"
            );
        }
        ProtoEvent::RtrAtProxy {
            src_rank,
            dst_rank,
            tag,
            msg_id,
        } => {
            let _ = write!(
                s,
                "ev=RtrAtProxy src_rank={src_rank} dst_rank={dst_rank} tag={tag} msg_id={msg_id}"
            );
        }
        ProtoEvent::PairMatched {
            src_rank,
            dst_rank,
            tag,
            send_msg_id,
            recv_msg_id,
        } => {
            let _ = write!(
                s,
                "ev=PairMatched src_rank={src_rank} dst_rank={dst_rank} tag={tag} send_msg_id={send_msg_id} recv_msg_id={recv_msg_id}"
            );
        }
        ProtoEvent::WritePosted {
            wrid,
            bytes,
            path,
            msg_id,
        } => {
            let _ = write!(
                s,
                "ev=WritePosted wrid={wrid} bytes={bytes} path={} msg_id={msg_id}",
                path_name(*path)
            );
        }
        ProtoEvent::WriteCompleted { wrid } => {
            let _ = write!(s, "ev=WriteCompleted wrid={wrid}");
        }
        ProtoEvent::FinSent {
            rank,
            req,
            wrid,
            kind,
            msg_id,
        } => {
            let _ = write!(
                s,
                "ev=FinSent rank={rank} req={req} wrid={wrid} kind={} msg_id={msg_id}",
                fin_name(*kind)
            );
        }
        ProtoEvent::CrossReg {
            host_rank,
            addr,
            len,
            mkey,
            mkey2,
        } => {
            let _ = write!(
                s,
                "ev=CrossReg host_rank={host_rank} addr={} len={len} mkey={} mkey2={}",
                addr.0,
                mkey.raw(),
                mkey2.raw()
            );
        }
        ProtoEvent::CrossRegCacheLookup {
            host_rank,
            addr,
            len,
            outcome,
            mkey,
            mkey2,
        } => {
            let _ = write!(
                s,
                "ev=CrossRegCacheLookup host_rank={host_rank} addr={} len={len} outcome={} mkey={} mkey2={}",
                addr.0,
                outcome_name(*outcome),
                opt_key(*mkey),
                opt_key(*mkey2)
            );
        }
        ProtoEvent::Mkey2Used { mkey2 } => {
            let _ = write!(s, "ev=Mkey2Used mkey2={}", mkey2.raw());
        }
        ProtoEvent::RecvMetaSent {
            from_rank,
            to_rank,
            req_id,
        } => {
            let _ = write!(
                s,
                "ev=RecvMetaSent from_rank={from_rank} to_rank={to_rank} req_id={req_id}"
            );
        }
        ProtoEvent::GroupPacketSent { host_rank, req_id } => {
            let _ = write!(
                s,
                "ev=GroupPacketSent host_rank={host_rank} req_id={req_id}"
            );
        }
        ProtoEvent::BarrierCntr {
            src_rank,
            dst_host_rank,
            dst_req_id,
            gen,
            value,
        } => {
            let _ = write!(
                s,
                "ev=BarrierCntr src_rank={src_rank} dst_host_rank={dst_host_rank} dst_req_id={dst_req_id} gen={gen} value={value}"
            );
        }
        ProtoEvent::HostCacheLookup {
            rank,
            cache,
            outcome,
        } => {
            let _ = write!(
                s,
                "ev=HostCacheLookup rank={rank} cache={} outcome={}",
                host_cache_name(*cache),
                outcome_name(*outcome)
            );
        }
        ProtoEvent::CacheEvicted { rank, side } => {
            let _ = write!(s, "ev=CacheEvicted rank={rank} side={}", side_name(*side));
        }
        ProtoEvent::CtrlDropped {
            at_proxy,
            kind,
            msg_id,
        } => {
            let _ = write!(
                s,
                "ev=CtrlDropped at_proxy={at_proxy} kind={} msg_id={msg_id}",
                ctrl_kind_name(*kind)
            );
        }
        ProtoEvent::CtrlRetransmit {
            at_proxy,
            kind,
            msg_id,
            attempt,
        } => {
            let _ = write!(
                s,
                "ev=CtrlRetransmit at_proxy={at_proxy} kind={} msg_id={msg_id} attempt={attempt}",
                ctrl_kind_name(*kind)
            );
        }
        ProtoEvent::CtrlDuplicateDropped {
            at_proxy,
            kind,
            msg_id,
        } => {
            let _ = write!(
                s,
                "ev=CtrlDuplicateDropped at_proxy={at_proxy} kind={} msg_id={msg_id}",
                ctrl_kind_name(*kind)
            );
        }
        ProtoEvent::CtrlAbandoned {
            at_proxy,
            kind,
            msg_id,
        } => {
            let _ = write!(
                s,
                "ev=CtrlAbandoned at_proxy={at_proxy} kind={} msg_id={msg_id}",
                ctrl_kind_name(*kind)
            );
        }
        ProtoEvent::FallbackToStaging {
            src_rank,
            dst_rank,
            tag,
            msg_id,
        } => {
            let _ = write!(
                s,
                "ev=FallbackToStaging src_rank={src_rank} dst_rank={dst_rank} tag={tag} msg_id={msg_id}"
            );
        }
        ProtoEvent::ProxyRestarted { epoch } => {
            let _ = write!(s, "ev=ProxyRestarted epoch={epoch}");
        }
        ProtoEvent::ReqReplayed { rank, msg_id } => {
            let _ = write!(s, "ev=ReqReplayed rank={rank} msg_id={msg_id}");
        }
        ProtoEvent::ReqFailed {
            rank,
            msg_id,
            attempts,
        } => {
            let _ = write!(
                s,
                "ev=ReqFailed rank={rank} msg_id={msg_id} attempts={attempts}"
            );
        }
        ProtoEvent::StaleCqe { wrid } => {
            let _ = write!(s, "ev=StaleCqe wrid={wrid}");
        }
        ProtoEvent::HostWakeup { rank, intervention } => {
            let _ = write!(s, "ev=HostWakeup rank={rank} intervention={intervention}");
        }
        ProtoEvent::GroupCallReturned {
            host_rank,
            req_id,
            gen,
        } => {
            let _ = write!(
                s,
                "ev=GroupCallReturned host_rank={host_rank} req_id={req_id} gen={gen}"
            );
        }
        ProtoEvent::GroupWaitDone {
            host_rank,
            req_id,
            gen,
        } => {
            let _ = write!(
                s,
                "ev=GroupWaitDone host_rank={host_rank} req_id={req_id} gen={gen}"
            );
        }
        ProtoEvent::GroupExecSent {
            host_rank,
            req_id,
            gen,
        } => {
            let _ = write!(
                s,
                "ev=GroupExecSent host_rank={host_rank} req_id={req_id} gen={gen}"
            );
        }
        ProtoEvent::BarrierStall {
            host_rank,
            req_id,
            gen,
        } => {
            let _ = write!(
                s,
                "ev=BarrierStall host_rank={host_rank} req_id={req_id} gen={gen}"
            );
        }
        ProtoEvent::ProxyQueueDepth {
            send_depth,
            recv_depth,
        } => {
            let _ = write!(
                s,
                "ev=ProxyQueueDepth send_depth={send_depth} recv_depth={recv_depth}"
            );
        }
        ProtoEvent::HostFinalized { rank } => {
            let _ = write!(s, "ev=HostFinalized rank={rank}");
        }
        ProtoEvent::PayloadCorrupt { msg_id, attempt } => {
            let _ = write!(s, "ev=PayloadCorrupt msg_id={msg_id} attempt={attempt}");
        }
        ProtoEvent::PayloadRecovered { msg_id, attempts } => {
            let _ = write!(s, "ev=PayloadRecovered msg_id={msg_id} attempts={attempts}");
        }
        ProtoEvent::DataIntegrityFailed { msg_id, attempts } => {
            let _ = write!(
                s,
                "ev=DataIntegrityFailed msg_id={msg_id} attempts={attempts}"
            );
        }
        ProtoEvent::QueueFullNack { msg_id } => {
            let _ = write!(s, "ev=QueueFullNack msg_id={msg_id}");
        }
        ProtoEvent::CreditDeferred { rank, msg_id } => {
            let _ = write!(s, "ev=CreditDeferred rank={rank} msg_id={msg_id}");
        }
        ProtoEvent::QuotaShed {
            tenant,
            rank,
            msg_id,
        } => {
            let _ = write!(
                s,
                "ev=QuotaShed tenant={tenant} rank={rank} msg_id={msg_id}"
            );
        }
        ProtoEvent::DrrGrant {
            tenant,
            rank,
            msg_id,
        } => {
            let _ = write!(s, "ev=DrrGrant tenant={tenant} rank={rank} msg_id={msg_id}");
        }
        ProtoEvent::StagingReclaimed { len } => {
            let _ = write!(s, "ev=StagingReclaimed len={len}");
        }
        ProtoEvent::ReqCancelled { rank, msg_id } => {
            let _ = write!(s, "ev=ReqCancelled rank={rank} msg_id={msg_id}");
        }
        ProtoEvent::ReqReaped { msg_id } => {
            let _ = write!(s, "ev=ReqReaped msg_id={msg_id}");
        }
        ProtoEvent::GroupFailed {
            host_rank,
            req_id,
            gen,
        } => {
            let _ = write!(
                s,
                "ev=GroupFailed host_rank={host_rank} req_id={req_id} gen={gen}"
            );
        }
        ProtoEvent::JournalTruncated { dropped } => {
            let _ = write!(s, "ev=JournalTruncated dropped={dropped}");
        }
        ProtoEvent::JournalSize { len } => {
            let _ = write!(s, "ev=JournalSize len={len}");
        }
        ProtoEvent::BreakerTripped { peer, path } => {
            let _ = write!(
                s,
                "ev=BreakerTripped peer={peer} path={}",
                health_path_name(*path)
            );
        }
        ProtoEvent::BreakerHalfOpen { peer, path } => {
            let _ = write!(
                s,
                "ev=BreakerHalfOpen peer={peer} path={}",
                health_path_name(*path)
            );
        }
        ProtoEvent::BreakerClosed { peer, path } => {
            let _ = write!(
                s,
                "ev=BreakerClosed peer={peer} path={}",
                health_path_name(*path)
            );
        }
        ProtoEvent::BreakerProbe { peer, path, msg_id } => {
            let _ = write!(
                s,
                "ev=BreakerProbe peer={peer} path={} msg_id={msg_id}",
                health_path_name(*path)
            );
        }
        ProtoEvent::BreakerFastPath { peer, path, msg_id } => {
            let _ = write!(
                s,
                "ev=BreakerFastPath peer={peer} path={} msg_id={msg_id}",
                health_path_name(*path)
            );
        }
        ProtoEvent::RetryBudgetExhausted { rank, msg_id, path } => {
            let _ = write!(
                s,
                "ev=RetryBudgetExhausted rank={rank} msg_id={msg_id} path={}",
                health_path_name(*path)
            );
        }
    }
    s
}

/// Keyed access to one dump line's `k=v` fields.
struct Fields<'a> {
    line_no: usize,
    kv: BTreeMap<&'a str, &'a str>,
}

impl<'a> Fields<'a> {
    fn parse(line_no: usize, line: &'a str) -> Result<Fields<'a>, String> {
        let mut kv = BTreeMap::new();
        for tok in line.split_ascii_whitespace() {
            let Some((k, v)) = tok.split_once('=') else {
                return Err(format!("line {line_no}: bare token {tok:?}"));
            };
            kv.insert(k, v);
        }
        Ok(Fields { line_no, kv })
    }

    fn raw(&self, key: &str) -> Result<&'a str, String> {
        self.kv
            .get(key)
            .copied()
            .ok_or_else(|| format!("line {}: missing field {key:?}", self.line_no))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        let v = self.raw(key)?;
        v.parse()
            .map_err(|_| format!("line {}: field {key}={v:?} is not a u64", self.line_no))
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        let v = self.raw(key)?;
        v.parse()
            .map_err(|_| format!("line {}: field {key}={v:?} is not a usize", self.line_no))
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.raw(key)? {
            "true" => Ok(true),
            "false" => Ok(false),
            v => Err(format!(
                "line {}: field {key}={v:?} is not a bool",
                self.line_no
            )),
        }
    }

    fn key(&self, key: &str) -> Result<MrKey, String> {
        Ok(MrKey::from_raw(self.u64(key)?))
    }

    fn opt_key(&self, key: &str) -> Result<Option<MrKey>, String> {
        match self.raw(key)? {
            "-" => Ok(None),
            _ => Ok(Some(self.key(key)?)),
        }
    }

    fn addr(&self, key: &str) -> Result<VAddr, String> {
        Ok(VAddr(self.u64(key)?))
    }

    fn variant<T: Copy>(&self, key: &str, table: &[(&str, T)]) -> Result<T, String> {
        let v = self.raw(key)?;
        table
            .iter()
            .find(|(name, _)| *name == v)
            .map(|&(_, t)| t)
            .ok_or_else(|| format!("line {}: unknown {key} variant {v:?}", self.line_no))
    }
}

/// Parse a [`FlightRecorder::dump`] back into records. Comment (`#`) and
/// blank lines are skipped; any malformed line is an error naming the
/// line and field.
pub fn parse_flight_dump(dump: &str) -> Result<Vec<FlightRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in dump.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let f = Fields::parse(line_no, trimmed)?;
        let at = SimTime::from_ps(f.u64("at_ps")?);
        let pid = Pid::from_index(f.usize("pid")?);
        let event = match f.raw("ev")? {
            "HostReqPosted" => ProtoEvent::HostReqPosted {
                rank: f.usize("rank")?,
                msg_id: f.u64("msg_id")?,
                peer: f.usize("peer")?,
                tag: f.u64("tag")?,
                bytes: f.u64("bytes")?,
                dir: f.variant(
                    "dir",
                    &[
                        ("Send", ReqDir::Send),
                        ("Recv", ReqDir::Recv),
                        ("OneSided", ReqDir::OneSided),
                    ],
                )?,
            },
            "HostReqDone" => ProtoEvent::HostReqDone {
                rank: f.usize("rank")?,
                msg_id: f.u64("msg_id")?,
                more_outstanding: f.bool("more_outstanding")?,
            },
            "RtsAtProxy" => ProtoEvent::RtsAtProxy {
                src_rank: f.usize("src_rank")?,
                dst_rank: f.usize("dst_rank")?,
                tag: f.u64("tag")?,
                msg_id: f.u64("msg_id")?,
            },
            "RtrAtProxy" => ProtoEvent::RtrAtProxy {
                src_rank: f.usize("src_rank")?,
                dst_rank: f.usize("dst_rank")?,
                tag: f.u64("tag")?,
                msg_id: f.u64("msg_id")?,
            },
            "PairMatched" => ProtoEvent::PairMatched {
                src_rank: f.usize("src_rank")?,
                dst_rank: f.usize("dst_rank")?,
                tag: f.u64("tag")?,
                send_msg_id: f.u64("send_msg_id")?,
                recv_msg_id: f.u64("recv_msg_id")?,
            },
            "WritePosted" => ProtoEvent::WritePosted {
                wrid: f.u64("wrid")?,
                bytes: f.u64("bytes")?,
                path: f.variant(
                    "path",
                    &[
                        ("CrossGvmi", PathKind::CrossGvmi),
                        ("StagingHop1", PathKind::StagingHop1),
                        ("StagingHop2", PathKind::StagingHop2),
                    ],
                )?,
                msg_id: f.u64("msg_id")?,
            },
            "WriteCompleted" => ProtoEvent::WriteCompleted {
                wrid: f.u64("wrid")?,
            },
            "FinSent" => ProtoEvent::FinSent {
                rank: f.usize("rank")?,
                req: f.usize("req")?,
                wrid: f.u64("wrid")?,
                kind: f.variant(
                    "kind",
                    &[
                        ("Send", FinKind::Send),
                        ("Recv", FinKind::Recv),
                        ("Group", FinKind::Group),
                    ],
                )?,
                msg_id: f.u64("msg_id")?,
            },
            "CrossReg" => ProtoEvent::CrossReg {
                host_rank: f.usize("host_rank")?,
                addr: f.addr("addr")?,
                len: f.u64("len")?,
                mkey: f.key("mkey")?,
                mkey2: f.key("mkey2")?,
            },
            "CrossRegCacheLookup" => ProtoEvent::CrossRegCacheLookup {
                host_rank: f.usize("host_rank")?,
                addr: f.addr("addr")?,
                len: f.u64("len")?,
                outcome: f.variant(
                    "outcome",
                    &[
                        ("Hit", CacheOutcome::Hit),
                        ("Miss", CacheOutcome::Miss),
                        ("Stale", CacheOutcome::Stale),
                    ],
                )?,
                mkey: f.opt_key("mkey")?,
                mkey2: f.opt_key("mkey2")?,
            },
            "Mkey2Used" => ProtoEvent::Mkey2Used {
                mkey2: f.key("mkey2")?,
            },
            "RecvMetaSent" => ProtoEvent::RecvMetaSent {
                from_rank: f.usize("from_rank")?,
                to_rank: f.usize("to_rank")?,
                req_id: f.usize("req_id")?,
            },
            "GroupPacketSent" => ProtoEvent::GroupPacketSent {
                host_rank: f.usize("host_rank")?,
                req_id: f.usize("req_id")?,
            },
            "BarrierCntr" => ProtoEvent::BarrierCntr {
                src_rank: f.usize("src_rank")?,
                dst_host_rank: f.usize("dst_host_rank")?,
                dst_req_id: f.usize("dst_req_id")?,
                gen: f.u64("gen")?,
                value: f.u64("value")?,
            },
            "HostCacheLookup" => ProtoEvent::HostCacheLookup {
                rank: f.usize("rank")?,
                cache: f.variant(
                    "cache",
                    &[("Gvmi", HostCacheKind::Gvmi), ("Ib", HostCacheKind::Ib)],
                )?,
                outcome: f.variant(
                    "outcome",
                    &[
                        ("Hit", CacheOutcome::Hit),
                        ("Miss", CacheOutcome::Miss),
                        ("Stale", CacheOutcome::Stale),
                    ],
                )?,
            },
            "CacheEvicted" => ProtoEvent::CacheEvicted {
                rank: f.usize("rank")?,
                side: f.variant(
                    "side",
                    &[
                        ("HostGvmi", CacheSide::HostGvmi),
                        ("HostIb", CacheSide::HostIb),
                        ("DpuCross", CacheSide::DpuCross),
                    ],
                )?,
            },
            "CtrlDropped" => ProtoEvent::CtrlDropped {
                at_proxy: f.bool("at_proxy")?,
                kind: f.variant("kind", CTRL_KINDS)?,
                msg_id: f.u64("msg_id")?,
            },
            "CtrlRetransmit" => ProtoEvent::CtrlRetransmit {
                at_proxy: f.bool("at_proxy")?,
                kind: f.variant("kind", CTRL_KINDS)?,
                msg_id: f.u64("msg_id")?,
                attempt: f.u64("attempt")? as u32,
            },
            "CtrlDuplicateDropped" => ProtoEvent::CtrlDuplicateDropped {
                at_proxy: f.bool("at_proxy")?,
                kind: f.variant("kind", CTRL_KINDS)?,
                msg_id: f.u64("msg_id")?,
            },
            "CtrlAbandoned" => ProtoEvent::CtrlAbandoned {
                at_proxy: f.bool("at_proxy")?,
                kind: f.variant("kind", CTRL_KINDS)?,
                msg_id: f.u64("msg_id")?,
            },
            "FallbackToStaging" => ProtoEvent::FallbackToStaging {
                src_rank: f.usize("src_rank")?,
                dst_rank: f.usize("dst_rank")?,
                tag: f.u64("tag")?,
                msg_id: f.u64("msg_id")?,
            },
            "ProxyRestarted" => ProtoEvent::ProxyRestarted {
                epoch: f.u64("epoch")?,
            },
            "ReqReplayed" => ProtoEvent::ReqReplayed {
                rank: f.usize("rank")?,
                msg_id: f.u64("msg_id")?,
            },
            "ReqFailed" => ProtoEvent::ReqFailed {
                rank: f.usize("rank")?,
                msg_id: f.u64("msg_id")?,
                attempts: f.u64("attempts")? as u32,
            },
            "StaleCqe" => ProtoEvent::StaleCqe {
                wrid: f.u64("wrid")?,
            },
            "HostWakeup" => ProtoEvent::HostWakeup {
                rank: f.usize("rank")?,
                intervention: f.bool("intervention")?,
            },
            "GroupCallReturned" => ProtoEvent::GroupCallReturned {
                host_rank: f.usize("host_rank")?,
                req_id: f.usize("req_id")?,
                gen: f.u64("gen")?,
            },
            "GroupWaitDone" => ProtoEvent::GroupWaitDone {
                host_rank: f.usize("host_rank")?,
                req_id: f.usize("req_id")?,
                gen: f.u64("gen")?,
            },
            "GroupExecSent" => ProtoEvent::GroupExecSent {
                host_rank: f.usize("host_rank")?,
                req_id: f.usize("req_id")?,
                gen: f.u64("gen")?,
            },
            "BarrierStall" => ProtoEvent::BarrierStall {
                host_rank: f.usize("host_rank")?,
                req_id: f.usize("req_id")?,
                gen: f.u64("gen")?,
            },
            "ProxyQueueDepth" => ProtoEvent::ProxyQueueDepth {
                send_depth: f.usize("send_depth")?,
                recv_depth: f.usize("recv_depth")?,
            },
            "HostFinalized" => ProtoEvent::HostFinalized {
                rank: f.usize("rank")?,
            },
            "PayloadCorrupt" => ProtoEvent::PayloadCorrupt {
                msg_id: f.u64("msg_id")?,
                attempt: f.u64("attempt")? as u32,
            },
            "PayloadRecovered" => ProtoEvent::PayloadRecovered {
                msg_id: f.u64("msg_id")?,
                attempts: f.u64("attempts")? as u32,
            },
            "DataIntegrityFailed" => ProtoEvent::DataIntegrityFailed {
                msg_id: f.u64("msg_id")?,
                attempts: f.u64("attempts")? as u32,
            },
            "QueueFullNack" => ProtoEvent::QueueFullNack {
                msg_id: f.u64("msg_id")?,
            },
            "CreditDeferred" => ProtoEvent::CreditDeferred {
                rank: f.usize("rank")?,
                msg_id: f.u64("msg_id")?,
            },
            "QuotaShed" => ProtoEvent::QuotaShed {
                tenant: f.usize("tenant")?,
                rank: f.usize("rank")?,
                msg_id: f.u64("msg_id")?,
            },
            "DrrGrant" => ProtoEvent::DrrGrant {
                tenant: f.usize("tenant")?,
                rank: f.usize("rank")?,
                msg_id: f.u64("msg_id")?,
            },
            "StagingReclaimed" => ProtoEvent::StagingReclaimed { len: f.u64("len")? },
            "ReqCancelled" => ProtoEvent::ReqCancelled {
                rank: f.usize("rank")?,
                msg_id: f.u64("msg_id")?,
            },
            "ReqReaped" => ProtoEvent::ReqReaped {
                msg_id: f.u64("msg_id")?,
            },
            "GroupFailed" => ProtoEvent::GroupFailed {
                host_rank: f.usize("host_rank")?,
                req_id: f.usize("req_id")?,
                gen: f.u64("gen")?,
            },
            "JournalTruncated" => ProtoEvent::JournalTruncated {
                dropped: f.u64("dropped")?,
            },
            "JournalSize" => ProtoEvent::JournalSize { len: f.u64("len")? },
            "BreakerTripped" => ProtoEvent::BreakerTripped {
                peer: f.usize("peer")?,
                path: f.variant("path", HEALTH_PATHS)?,
            },
            "BreakerHalfOpen" => ProtoEvent::BreakerHalfOpen {
                peer: f.usize("peer")?,
                path: f.variant("path", HEALTH_PATHS)?,
            },
            "BreakerClosed" => ProtoEvent::BreakerClosed {
                peer: f.usize("peer")?,
                path: f.variant("path", HEALTH_PATHS)?,
            },
            "BreakerProbe" => ProtoEvent::BreakerProbe {
                peer: f.usize("peer")?,
                path: f.variant("path", HEALTH_PATHS)?,
                msg_id: f.u64("msg_id")?,
            },
            "BreakerFastPath" => ProtoEvent::BreakerFastPath {
                peer: f.usize("peer")?,
                path: f.variant("path", HEALTH_PATHS)?,
                msg_id: f.u64("msg_id")?,
            },
            "RetryBudgetExhausted" => ProtoEvent::RetryBudgetExhausted {
                rank: f.usize("rank")?,
                msg_id: f.u64("msg_id")?,
                path: f.variant("path", HEALTH_PATHS)?,
            },
            other => return Err(format!("line {line_no}: unknown event {other:?}")),
        };
        out.push(FlightRecord { at, pid, event });
    }
    Ok(out)
}

/// Feed recorded events into a sink, e.g. a fresh conformance checker.
/// The replay preserves timestamps and emitting pids, so any verdict a
/// sink reaches on the live stream it reaches again on the dump.
pub fn replay_into(records: &[FlightRecord], sink: &EventSink) {
    for r in records {
        sink(r.at, r.pid, &r.event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq_pid: usize, ev: ProtoEvent) -> FlightRecord {
        FlightRecord {
            at: SimTime::from_ps(1000 + seq_pid as u64),
            pid: Pid::from_index(seq_pid),
            event: ev,
        }
    }

    fn sample_events() -> Vec<FlightRecord> {
        vec![
            record(
                0,
                ProtoEvent::HostReqPosted {
                    rank: 0,
                    msg_id: 1,
                    peer: 1,
                    tag: 7,
                    bytes: 4096,
                    dir: ReqDir::Send,
                },
            ),
            record(
                2,
                ProtoEvent::RtsAtProxy {
                    src_rank: 0,
                    dst_rank: 1,
                    tag: 7,
                    msg_id: 1,
                },
            ),
            record(
                2,
                ProtoEvent::CrossRegCacheLookup {
                    host_rank: 0,
                    addr: VAddr(0x1000),
                    len: 4096,
                    outcome: CacheOutcome::Miss,
                    mkey: None,
                    mkey2: None,
                },
            ),
            record(
                2,
                ProtoEvent::CrossReg {
                    host_rank: 0,
                    addr: VAddr(0x1000),
                    len: 4096,
                    mkey: MrKey::from_raw(17),
                    mkey2: MrKey::from_raw(33),
                },
            ),
            record(
                2,
                ProtoEvent::WritePosted {
                    wrid: 42,
                    bytes: 4096,
                    path: PathKind::CrossGvmi,
                    msg_id: 1,
                },
            ),
            record(
                2,
                ProtoEvent::FinSent {
                    rank: 0,
                    req: 0,
                    wrid: 42,
                    kind: FinKind::Send,
                    msg_id: 1,
                },
            ),
            record(
                0,
                ProtoEvent::HostReqDone {
                    rank: 0,
                    msg_id: 1,
                    more_outstanding: false,
                },
            ),
            record(
                2,
                ProtoEvent::CtrlDropped {
                    at_proxy: true,
                    kind: CtrlKind::Rts,
                    msg_id: 1,
                },
            ),
            record(
                0,
                ProtoEvent::CtrlRetransmit {
                    at_proxy: false,
                    kind: CtrlKind::Rts,
                    msg_id: 1,
                    attempt: 2,
                },
            ),
            record(
                2,
                ProtoEvent::CtrlDuplicateDropped {
                    at_proxy: true,
                    kind: CtrlKind::Rtr,
                    msg_id: 4294967297,
                },
            ),
            record(
                0,
                ProtoEvent::CtrlAbandoned {
                    at_proxy: false,
                    kind: CtrlKind::FinRecv,
                    msg_id: 3,
                },
            ),
            record(
                2,
                ProtoEvent::FallbackToStaging {
                    src_rank: 0,
                    dst_rank: 1,
                    tag: 7,
                    msg_id: 1,
                },
            ),
            record(2, ProtoEvent::ProxyRestarted { epoch: 1 }),
            record(0, ProtoEvent::ReqReplayed { rank: 0, msg_id: 1 }),
            record(
                0,
                ProtoEvent::ReqFailed {
                    rank: 0,
                    msg_id: 9,
                    attempts: 12,
                },
            ),
            record(2, ProtoEvent::StaleCqe { wrid: 43 }),
            record(
                2,
                ProtoEvent::PayloadCorrupt {
                    msg_id: 1,
                    attempt: 1,
                },
            ),
            record(
                2,
                ProtoEvent::PayloadRecovered {
                    msg_id: 1,
                    attempts: 2,
                },
            ),
            record(
                2,
                ProtoEvent::DataIntegrityFailed {
                    msg_id: 9,
                    attempts: 8,
                },
            ),
            record(2, ProtoEvent::QueueFullNack { msg_id: 5 }),
            record(0, ProtoEvent::CreditDeferred { rank: 0, msg_id: 6 }),
            record(
                0,
                ProtoEvent::QuotaShed {
                    tenant: 1,
                    rank: 3,
                    msg_id: 12884901890,
                },
            ),
            record(
                0,
                ProtoEvent::DrrGrant {
                    tenant: 0,
                    rank: 0,
                    msg_id: 6,
                },
            ),
            record(2, ProtoEvent::StagingReclaimed { len: 4096 }),
            record(0, ProtoEvent::ReqCancelled { rank: 0, msg_id: 7 }),
            record(2, ProtoEvent::ReqReaped { msg_id: 7 }),
            record(
                0,
                ProtoEvent::GroupFailed {
                    host_rank: 0,
                    req_id: 0,
                    gen: 3,
                },
            ),
            record(2, ProtoEvent::JournalTruncated { dropped: 64 }),
            record(2, ProtoEvent::JournalSize { len: 12 }),
            record(
                2,
                ProtoEvent::BreakerTripped {
                    peer: 1,
                    path: HealthPath::CrossGvmi,
                },
            ),
            record(
                2,
                ProtoEvent::BreakerHalfOpen {
                    peer: 1,
                    path: HealthPath::CrossGvmi,
                },
            ),
            record(
                2,
                ProtoEvent::BreakerProbe {
                    peer: 1,
                    path: HealthPath::CrossGvmi,
                    msg_id: 9,
                },
            ),
            record(
                2,
                ProtoEvent::BreakerClosed {
                    peer: 1,
                    path: HealthPath::CrossGvmi,
                },
            ),
            record(
                2,
                ProtoEvent::BreakerFastPath {
                    peer: 1,
                    path: HealthPath::Staging,
                    msg_id: 10,
                },
            ),
            record(
                0,
                ProtoEvent::RetryBudgetExhausted {
                    rank: 0,
                    msg_id: 11,
                    path: HealthPath::Ctrl,
                },
            ),
            record(
                2,
                ProtoEvent::CtrlDropped {
                    at_proxy: true,
                    kind: CtrlKind::QueueFull,
                    msg_id: 5,
                },
            ),
        ]
    }

    #[test]
    fn dump_round_trips_every_sampled_variant() {
        let rec = FlightRecorder::new();
        let sink = rec.sink();
        for r in sample_events() {
            sink(r.at, r.pid, &r.event);
        }
        let dump = rec.dump();
        let parsed = parse_flight_dump(&dump).expect("parse own dump");
        let again = {
            let rec2 = FlightRecorder::new();
            let sink2 = rec2.sink();
            replay_into(&parsed, &sink2);
            rec2.dump()
        };
        assert_eq!(dump, again, "dump → parse → replay → dump is a fixpoint");
    }

    #[test]
    fn ring_is_bounded_per_pid_and_counts_evictions() {
        let rec = FlightRecorder::with_capacity(4);
        let sink = rec.sink();
        for i in 0..10u64 {
            sink(
                SimTime::from_ps(i),
                Pid::from_index(1),
                &ProtoEvent::WriteCompleted { wrid: i },
            );
        }
        sink(
            SimTime::from_ps(99),
            Pid::from_index(2),
            &ProtoEvent::WriteCompleted { wrid: 99 },
        );
        let records = rec.records();
        assert_eq!(records.len(), 5, "4 retained on pid 1 + 1 on pid 2");
        assert_eq!(rec.dropped(), 6);
        // The retained pid-1 events are the most recent ones, in order.
        let wrids: Vec<u64> = records
            .iter()
            .filter(|r| r.pid.index() == 1)
            .map(|r| match r.event {
                ProtoEvent::WriteCompleted { wrid } => wrid,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(wrids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn parser_reports_malformed_lines() {
        assert!(parse_flight_dump("at_ps=1 pid=0 ev=Nonsense").is_err());
        assert!(parse_flight_dump("at_ps=1 pid=0 ev=WriteCompleted").is_err());
        assert!(parse_flight_dump("at_ps=x pid=0 ev=WriteCompleted wrid=1").is_err());
        assert!(parse_flight_dump("# comment only\n\n")
            .expect("ok")
            .is_empty());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let dump = "# header\n\nat_ps=5 pid=3 ev=HostFinalized rank=2\n";
        let recs = parse_flight_dump(dump).expect("parse");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].at.as_ps(), 5);
        assert_eq!(recs[0].pid.index(), 3);
        assert!(matches!(
            recs[0].event,
            ProtoEvent::HostFinalized { rank: 2 }
        ));
    }
}
