//! Reliability layer for the host↔DPU ctrl plane (DESIGN.md §13).
//!
//! When a run's [`FaultPlan`] injects losses, every ctrl message travels
//! inside a sequence-numbered [`CtrlMsg::Seq`] envelope. The sender keeps
//! the message in a pending table and arms a virtual-time retransmission
//! timer (a [`CtrlMsg::RetxTick`] self-delivery) with exponential
//! backoff; the receiver acks every envelope and deduplicates on
//! `(sender, epoch, seq)` so retransmits and injected duplicates are
//! idempotent. A sender that exhausts its retransmission budget abandons
//! the message and surfaces a typed [`OffloadError`] on the associated
//! request instead of hanging.
//!
//! The layer is *disarmed* on a clean plan ([`FaultPlan::reliable`] is
//! false): senders bypass the envelope entirely, so fault-free runs are
//! byte-identical to the pre-reliability protocol and committed bench
//! baselines do not move.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rdma::{EpId, Fabric, NetMsg, Packet};
use simnet::{Pid, ProcessCtx, SimDelta};

use crate::config::FaultPlan;
use crate::events::{CtrlKind, ProtoEvent};
use crate::health::TokenBucket;
use crate::messages::CtrlMsg;

/// Default retransmission backoff floor (PR 10 lifted the former
/// `RETX_BASE` const into [`OffloadConfig::retx_base`]).
pub(crate) const DEFAULT_RETX_BASE: SimDelta = SimDelta::from_us(20);
/// Default retransmission backoff ceiling (former `RETX_CAP`).
pub(crate) const DEFAULT_RETX_CAP: SimDelta = SimDelta::from_us(200);
/// Default send attempts (original + retransmits) before a message is
/// abandoned (former `MAX_ATTEMPTS`). At a 10% injected drop rate the
/// chance of losing all attempts is 1e-12 — abandonment in practice
/// means the peer is gone, not the link lossy.
pub(crate) const DEFAULT_CTRL_MAX_ATTEMPTS: u32 = 12;

/// Retry pacing and budget knobs for one [`ReliableLink`], derived from
/// [`OffloadConfig`] so fault-soak sweeps can tune them without
/// recompiling. `budget` arms the per-peer retry token bucket
/// (capacity, refill-per-ack); `None` keeps the pre-health unbounded
/// `max_attempts`-only behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct RetryKnobs {
    pub(crate) base: SimDelta,
    pub(crate) cap: SimDelta,
    pub(crate) max_attempts: u32,
    pub(crate) budget: Option<(u32, u32)>,
}

impl Default for RetryKnobs {
    fn default() -> Self {
        RetryKnobs {
            base: DEFAULT_RETX_BASE,
            cap: DEFAULT_RETX_CAP,
            max_attempts: DEFAULT_CTRL_MAX_ATTEMPTS,
            budget: None,
        }
    }
}

/// Typed failure surfaced by the offload engine when a posted request
/// cannot complete (instead of hanging forever).
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum OffloadError {
    /// A ctrl message for this request exhausted its retransmission
    /// budget; the peer is unreachable.
    CtrlUndeliverable {
        /// Transfer id of the failed request.
        msg_id: u64,
        /// Send attempts made before giving up.
        attempts: u32,
    },
    /// End-to-end CRC verification kept failing: the proxy exhausted its
    /// bounded data-path retransmission budget for this transfer.
    DataIntegrity {
        /// Transfer id of the failed request.
        msg_id: u64,
        /// Data-path delivery attempts made before giving up.
        attempts: u32,
    },
    /// The request's deadline expired before its FIN arrived; it was
    /// cancelled and the proxy told to reap it.
    DeadlineExceeded {
        /// Transfer id of the timed-out request.
        msg_id: u64,
    },
    /// The application cancelled the request before it completed.
    Cancelled {
        /// Transfer id of the cancelled request.
        msg_id: u64,
    },
    /// A group generation failed permanently: a group ctrl message was
    /// abandoned, or a group entry's data path failed integrity checks.
    GroupFailed {
        /// Group request id on the failing rank.
        req_id: usize,
        /// Generation that failed.
        gen: u64,
    },
    /// The post was shed at admission: the rank's tenant is over its
    /// hard quota (DESIGN.md §18). Unlike the deferral path this is an
    /// immediate, typed refusal — the application may retry once its
    /// earlier posts settle.
    QuotaExceeded {
        /// Tenant whose hard quota was hit.
        tenant: usize,
        /// Transfer id of the shed request.
        msg_id: u64,
    },
    /// The retry was shed by the health engine (DESIGN.md §19): the
    /// peer's retry-budget token bucket ran dry before the bounded
    /// attempt counter did, so the request fails fast instead of
    /// feeding a correlated retransmission storm.
    RetryBudgetExhausted {
        /// Transfer id of the shed request.
        msg_id: u64,
        /// Delivery attempts made before the budget ran out.
        attempts: u32,
    },
}

impl fmt::Debug for OffloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffloadError::CtrlUndeliverable { msg_id, attempts } => write!(
                f,
                "ctrl message for transfer {msg_id:#x} undeliverable after {attempts} attempts"
            ),
            OffloadError::DataIntegrity { msg_id, attempts } => write!(
                f,
                "payload of transfer {msg_id:#x} failed CRC verification after {attempts} delivery attempts"
            ),
            OffloadError::DeadlineExceeded { msg_id } => {
                write!(f, "transfer {msg_id:#x} missed its deadline and was cancelled")
            }
            OffloadError::Cancelled { msg_id } => {
                write!(f, "transfer {msg_id:#x} was cancelled by the application")
            }
            OffloadError::GroupFailed { req_id, gen } => {
                write!(f, "group request {req_id} generation {gen} failed permanently")
            }
            OffloadError::QuotaExceeded { tenant, msg_id } => write!(
                f,
                "transfer {msg_id:#x} shed at admission: tenant {tenant} is over its hard quota"
            ),
            OffloadError::RetryBudgetExhausted { msg_id, attempts } => write!(
                f,
                "transfer {msg_id:#x} shed: peer retry budget exhausted after {attempts} attempts"
            ),
        }
    }
}

impl fmt::Display for OffloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for OffloadError {}

/// Deterministic fault RNG (splitmix64), deliberately separate from the
/// simulator's schedule RNG so fault decisions never perturb schedules
/// and the explorer can sweep fault seeds independently.
pub(crate) struct FaultRng(u64);

impl FaultRng {
    pub(crate) fn new(seed: u64, salt: u64) -> FaultRng {
        FaultRng(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Raw 64-bit draw (the health engine jitters probe cooldowns with
    /// it so breaker episodes de-synchronize across peers).
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.next()
    }

    /// Roll a permille chance. Zero never fires (and does not consume
    /// randomness, keeping unrelated rolls aligned across plans).
    pub(crate) fn chance(&mut self, pm: u16) -> bool {
        pm > 0 && self.next() % 1000 < u64::from(pm)
    }
}

/// Receiver-side duplicate suppression, keyed `(sender, epoch, seq)`.
/// A restarted sender bumps its epoch, so its fresh seq space never
/// collides with pre-crash history.
#[derive(Default)]
pub(crate) struct DedupWindow {
    seen: BTreeMap<(Pid, u64), BTreeSet<u64>>,
}

impl DedupWindow {
    /// Record `(from, epoch, seq)`; true when seen for the first time.
    pub(crate) fn accept(&mut self, from: Pid, epoch: u64, seq: u64) -> bool {
        self.seen.entry((from, epoch)).or_default().insert(seq)
    }

    /// Forget everything (a crashed receiver loses its window; senders'
    /// epoch bumps and the engine-level journals keep replays safe).
    pub(crate) fn clear(&mut self) {
        self.seen.clear();
    }
}

/// What an abandoned ctrl message was working for, so the owner can
/// surface a typed failure on the right request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ReqOrigin {
    /// Not tied to any host request slot (e.g. FINs, shutdown notices).
    Free,
    /// Basic-path request slot index on the sending host.
    Basic(usize),
    /// Group request id on the sending host; abandonment fails the
    /// in-flight generation.
    Group(usize),
}

/// One unacked ctrl message at the sender.
struct Pending {
    to: EpId,
    msg: CtrlMsg,
    /// Modelled wire size (metadata-bearing messages exceed ctrl_bytes).
    bytes: u64,
    attempts: u32,
    backoff: SimDelta,
    /// What to fail if the message is abandoned.
    origin: ReqOrigin,
}

/// What a retransmission-timer tick did.
pub(crate) enum TickOutcome {
    /// The message was already acked (or this side restarted); no-op.
    Idle,
    /// The message was retransmitted and a new timer armed.
    Retransmitted,
    /// The retransmission budget is exhausted; the message is dropped
    /// from the pending table and the caller must surface the failure.
    Abandoned {
        msg_id: u64,
        attempts: u32,
        origin: ReqOrigin,
    },
    /// The peer's retry-budget token bucket ran dry before the attempt
    /// counter did: the message is dropped from the pending table and
    /// the caller must shed-and-surface a typed
    /// [`OffloadError::RetryBudgetExhausted`].
    BudgetShed {
        msg_id: u64,
        attempts: u32,
        origin: ReqOrigin,
    },
}

/// Exponential ctrl-plane backoff for delivery attempt `attempt`
/// (1-based): `base * 2^(attempt-1)` capped at `cap`. Shared with the
/// data-path retransmission and backpressure-retry timers so every
/// retry loop in the engine paces identically; callers thread
/// [`OffloadConfig::retx_base`]/[`OffloadConfig::retx_cap`] through.
pub(crate) fn backoff_delay_from(base: SimDelta, cap: SimDelta, attempt: u32) -> SimDelta {
    let mut d = base;
    for _ in 1..attempt {
        d = (d * 2).min(cap);
    }
    d
}

/// Per-process endpoint of the reliable ctrl plane: the sender half
/// (pending table + retransmission timers) and the receiver half
/// (ack generation + dedup window) in one.
pub(crate) struct ReliableLink {
    plan: FaultPlan,
    knobs: RetryKnobs,
    rng: FaultRng,
    /// True on proxies (event attribution).
    at_proxy: bool,
    /// Endpoint the envelopes (and acks) are sent from.
    from_ep: EpId,
    /// Modelled wire size of one ctrl message.
    ctrl_bytes: u64,
    /// Restart epoch carried in outgoing envelopes.
    epoch: u64,
    next_seq: u64,
    pending: BTreeMap<u64, Pending>,
    dedup: DedupWindow,
    /// Per-destination retry budgets (keyed by endpoint index), created
    /// lazily at full capacity. Empty when `knobs.budget` is `None`.
    buckets: BTreeMap<u64, TokenBucket>,
}

impl ReliableLink {
    pub(crate) fn new(
        plan: FaultPlan,
        knobs: RetryKnobs,
        ctrl_bytes: u64,
        at_proxy: bool,
        from_ep: EpId,
    ) -> Self {
        ReliableLink {
            plan,
            knobs,
            rng: FaultRng::new(plan.seed, from_ep.index() as u64 + 1),
            at_proxy,
            from_ep,
            ctrl_bytes,
            epoch: 0,
            next_seq: 0,
            pending: BTreeMap::new(),
            dedup: DedupWindow::default(),
            buckets: BTreeMap::new(),
        }
    }

    /// Current restart epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether any sent message is still unacked.
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Send `msg` reliably: envelope, pending entry, retransmission
    /// timer. `origin` names what to fail on abandonment.
    pub(crate) fn send(
        &mut self,
        ctx: &ProcessCtx,
        fab: &Fabric,
        to: EpId,
        bytes: u64,
        msg: CtrlMsg,
        origin: ReqOrigin,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(
            seq,
            Pending {
                to,
                msg,
                bytes,
                attempts: 1,
                backoff: self.knobs.base,
                origin,
            },
        );
        self.transmit(ctx, fab, seq);
    }

    /// Put one attempt of pending message `seq` on the wire, applying the
    /// plan's drop/delay/duplicate faults, and arm the retransmission
    /// timer at the entry's current backoff.
    fn transmit(&mut self, ctx: &ProcessCtx, fab: &Fabric, seq: u64) {
        let p = &self.pending[&seq];
        let (to, kind, msg_id, backoff) = (p.to, p.msg.kind(), p.msg.msg_id_hint(), p.backoff);
        let bytes = p.bytes;
        let (msg, from, from_ep, epoch) = (p.msg.clone(), ctx.pid(), self.from_ep, self.epoch);
        let envelope = move || CtrlMsg::Seq {
            seq,
            from,
            from_ep,
            epoch,
            inner: Box::new(msg.clone()),
        };
        // Targeted fault: unconditionally eat group launch messages so
        // abandonment of a group ctrl message is deterministic (the
        // group-abandonment satellite test relies on this; permille
        // drops cannot guarantee losing all 12 attempts).
        let group_eaten = self.plan.drop_group_packets
            && matches!(kind, CtrlKind::GroupPacket | CtrlKind::GroupExec);
        if group_eaten || self.rng.chance(self.plan.drop_pm) {
            ctx.stat_incr("offload.reliable.injected_drops", 1);
            ctx.emit(&ProtoEvent::CtrlDropped {
                at_proxy: self.at_proxy,
                kind,
                msg_id,
            });
        } else if self.rng.chance(self.plan.delay_pm) {
            // Late delivery: bypass the fabric's send path and deposit
            // the packet into the destination mailbox after `delay_ns`.
            ctx.stat_incr("offload.reliable.injected_delays", 1);
            ctx.deliver(
                fab.pid_of(to),
                SimDelta::from_ns(self.plan.delay_ns),
                Box::new(NetMsg::Packet(Packet {
                    src: self.from_ep,
                    bytes,
                    body: Box::new(envelope()),
                })),
            );
        } else {
            fab.send_packet(ctx, self.from_ep, to, bytes, Box::new(envelope()))
                .expect("reliable ctrl send");
            if self.rng.chance(self.plan.dup_pm) {
                ctx.stat_incr("offload.reliable.injected_dups", 1);
                fab.send_packet(ctx, self.from_ep, to, bytes, Box::new(envelope()))
                    .expect("reliable ctrl dup send");
            }
        }
        ctx.deliver_self(
            backoff,
            Box::new(NetMsg::Notify(Box::new(CtrlMsg::RetxTick { seq }))),
        );
    }

    /// A retransmission timer fired.
    pub(crate) fn on_tick(&mut self, ctx: &ProcessCtx, fab: &Fabric, seq: u64) -> TickOutcome {
        let Some(p) = self.pending.get_mut(&seq) else {
            return TickOutcome::Idle;
        };
        if p.attempts >= self.knobs.max_attempts {
            let p = self.pending.remove(&seq).expect("entry just found");
            let (kind, msg_id) = (p.msg.kind(), p.msg.msg_id_hint());
            ctx.stat_incr("offload.reliable.abandoned", 1);
            ctx.emit(&ProtoEvent::CtrlAbandoned {
                at_proxy: self.at_proxy,
                kind,
                msg_id,
            });
            return TickOutcome::Abandoned {
                msg_id,
                attempts: p.attempts,
                origin: p.origin,
            };
        }
        // Health-armed links pay one budget token per retransmit toward
        // a peer; an empty bucket sheds the message instead of feeding
        // a correlated storm (DESIGN.md §19). Acks refill the bucket.
        if let Some((cap, refill)) = self.knobs.budget {
            let to = p.to.index() as u64;
            let bucket = self
                .buckets
                .entry(to)
                .or_insert_with(|| TokenBucket::new(cap, refill));
            if !bucket.try_spend() {
                let shed = self.pending.remove(&seq).expect("entry just found");
                ctx.stat_incr("offload.reliable.budget_sheds", 1);
                return TickOutcome::BudgetShed {
                    msg_id: shed.msg.msg_id_hint(),
                    attempts: shed.attempts,
                    origin: shed.origin,
                };
            }
        }
        let p = self.pending.get_mut(&seq).expect("entry just found");
        p.attempts += 1;
        let attempt = p.attempts - 1;
        p.backoff = (p.backoff * 2).min(self.knobs.cap);
        let (kind, msg_id) = (p.msg.kind(), p.msg.msg_id_hint());
        ctx.stat_incr("offload.reliable.retransmits", 1);
        ctx.emit(&ProtoEvent::CtrlRetransmit {
            at_proxy: self.at_proxy,
            kind,
            msg_id,
            attempt,
        });
        self.transmit(ctx, fab, seq);
        TickOutcome::Retransmitted
    }

    /// An ack arrived: retire the pending entry (idempotent) and refill
    /// the destination's retry budget — a responsive peer earns its
    /// tokens back, so budgets only bite during sustained brownouts.
    pub(crate) fn on_ack(&mut self, seq: u64) {
        if let Some(p) = self.pending.remove(&seq) {
            if let Some(bucket) = self.buckets.get_mut(&(p.to.index() as u64)) {
                bucket.credit();
            }
        }
    }

    /// Forget the retry-budget history for `to` (refilled lazily at full
    /// capacity on next use). Called when that peer restarts: the fresh
    /// process deserves a fresh budget.
    pub(crate) fn reset_budget_for(&mut self, to: EpId) {
        self.buckets.remove(&(to.index() as u64));
    }

    /// An envelope arrived: ack it (acks share the lossy plane — a lost
    /// ack is healed by retransmit → dedup → re-ack) and deduplicate.
    /// Returns the inner message on first delivery, `None` on duplicates.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_seq(
        &mut self,
        ctx: &ProcessCtx,
        fab: &Fabric,
        seq: u64,
        from: Pid,
        from_ep: EpId,
        epoch: u64,
        inner: CtrlMsg,
    ) -> Option<CtrlMsg> {
        if self.rng.chance(self.plan.drop_pm) {
            ctx.stat_incr("offload.reliable.injected_drops", 1);
            ctx.emit(&ProtoEvent::CtrlDropped {
                at_proxy: self.at_proxy,
                kind: CtrlKind::Ack,
                msg_id: 0,
            });
        } else {
            fab.send_packet(
                ctx,
                self.from_ep,
                from_ep,
                self.ctrl_bytes,
                Box::new(CtrlMsg::Ack { seq }),
            )
            .expect("reliable ctrl ack");
        }
        if self.dedup.accept(from, epoch, seq) {
            Some(inner)
        } else {
            ctx.stat_incr("offload.reliable.dups_dropped", 1);
            ctx.emit(&ProtoEvent::CtrlDuplicateDropped {
                at_proxy: self.at_proxy,
                kind: inner.kind(),
                msg_id: inner.msg_id_hint(),
            });
            None
        }
    }

    /// Crash recovery: forget all sender and receiver state and start a
    /// fresh epoch. Outgoing envelopes now carry the new epoch, so peers
    /// dedup this side's messages in a fresh space.
    pub(crate) fn reset_for_restart(&mut self) {
        self.epoch += 1;
        self.pending.clear();
        self.dedup.clear();
        self.buckets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_rng_is_deterministic_and_respects_rates() {
        let mut a = FaultRng::new(7, 3);
        let mut b = FaultRng::new(7, 3);
        let rolls_a: Vec<bool> = (0..64).map(|_| a.chance(100)).collect();
        let rolls_b: Vec<bool> = (0..64).map(|_| b.chance(100)).collect();
        assert_eq!(rolls_a, rolls_b, "same seed+salt must agree");
        let mut c = FaultRng::new(7, 4);
        assert!((0..4096).any(|_| c.chance(500)), "50% must fire sometimes");
        let mut d = FaultRng::new(7, 5);
        assert!((0..4096).all(|_| !d.chance(0)), "0 permille never fires");
        let hits = {
            let mut e = FaultRng::new(42, 1);
            (0..10_000).filter(|_| e.chance(100)).count()
        };
        assert!(
            (600..1400).contains(&hits),
            "10% rate wildly off: {hits}/10000"
        );
    }

    #[test]
    fn dedup_accepts_once_per_epoch() {
        let mut w = DedupWindow::default();
        let p = Pid::from_index(3);
        assert!(w.accept(p, 0, 1));
        assert!(!w.accept(p, 0, 1), "duplicate must be rejected");
        assert!(w.accept(p, 1, 1), "a new epoch is a fresh seq space");
        assert!(w.accept(Pid::from_index(4), 0, 1), "senders independent");
        w.clear();
        assert!(w.accept(p, 0, 1), "cleared window forgets history");
    }

    mod proptests {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            // Satellite: dedup yields exactly-once delivery under
            // arbitrary duplicate injection. Each (epoch, seq) pair may
            // appear any number of times in the arrival order; the window
            // must accept each distinct pair exactly once.
            #[test]
            fn dedup_is_exactly_once_under_arbitrary_duplication(
                arrivals in prop::collection::vec((0u64..3, 0u64..16), 1..200),
            ) {
                let mut w = DedupWindow::default();
                let sender = Pid::from_index(1);
                let mut delivered: Vec<(u64, u64)> = Vec::new();
                for &(epoch, seq) in &arrivals {
                    if w.accept(sender, epoch, seq) {
                        delivered.push((epoch, seq));
                    }
                }
                let mut distinct: Vec<(u64, u64)> = arrivals.clone();
                distinct.sort_unstable();
                distinct.dedup();
                let mut got = delivered.clone();
                got.sort_unstable();
                prop_assert_eq!(
                    got, distinct,
                    "every distinct (epoch, seq) delivered exactly once"
                );
            }
        }
    }
}
