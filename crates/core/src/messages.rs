//! Wire messages of the offload framework.
//!
//! These ride as bodies of [`rdma::NetMsg::Packet`] (control path) and
//! [`rdma::NetMsg::Notify`] (attached to RDMA writes). CQE work-request
//! ids carry the engine tag in the top byte so several engines can share
//! one process mailbox.

use rdma::{EpId, MrKey, VAddr};
use simnet::Pid;

use crate::events::CtrlKind;

/// Work-request namespace of host-posted offload operations (staging
/// writes).
pub(crate) const WRID_OFF_HOST: u64 = 0x0200_0000_0000_0000;
/// Work-request namespace of proxy-posted offload operations.
pub(crate) const WRID_OFF_PROXY: u64 = 0x0300_0000_0000_0000;
/// Mask selecting the engine tag of a wrid.
pub(crate) const WRID_MASK: u64 = 0xFF00_0000_0000_0000;

/// Identifier of one group request instance: the owning host rank and the
/// host-local request id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub(crate) struct GroupKey {
    pub host_rank: usize,
    pub req_id: usize,
}

/// A group-packet entry as shipped to the proxy (paper Fig. 9).
#[derive(Clone, Debug)]
pub(crate) enum WireEntry {
    /// An offloaded send: everything the proxy needs to move
    /// `[addr, addr+len)` of the owning host into the matched remote
    /// receive buffer.
    Send {
        addr: VAddr,
        len: u64,
        /// Host-side GVMI mkey (input to cross-registration; GVMI path).
        mkey: MrKey,
        /// IB rkey of the source buffer (staging path: the proxy
        /// RDMA-READs the payload into its staging buffer through this).
        src_rkey: MrKey,
        dst_rank: usize,
        tag: u64,
        /// Matched destination buffer (from the metadata gather).
        dst_addr: VAddr,
        dst_rkey: MrKey,
        /// Destination host's request id (labels barrier counters and
        /// arrival notifications at the destination proxy).
        dst_req_id: usize,
        /// Stable per-transfer id allocated from the owning host's
        /// message counter when the wire image is built; labels the data
        /// writes this entry produces in the event stream.
        msg_id: u64,
        /// CRC32 of the payload at build time. Present only when the
        /// run's fault plan arms payload faults (end-to-end integrity).
        crc: Option<u32>,
    },
    /// An offloaded receive: passive — tracked for arrival.
    Recv { src_rank: usize, tag: u64 },
    /// `Local_barrier_Goffload` marker.
    Barrier,
}

/// Control messages (packet bodies and notify bodies).
///
/// Some fields model wire contents the simulated receiver re-derives from
/// the roster (e.g. pids); they are kept so the message layouts match the
/// paper's protocol diagrams.
#[derive(Clone, Debug)]
#[allow(dead_code)]
pub(crate) enum CtrlMsg {
    // ---- Basic primitives (paper Figs. 7-8) ----
    /// Ready-to-send: source host → source-side proxy.
    Rts {
        src_rank: usize,
        dst_rank: usize,
        tag: u64,
        addr: VAddr,
        len: u64,
        /// GVMI mkey (GVMI path).
        mkey: Option<MrKey>,
        /// IB rkey of the source buffer (staging path: the proxy pulls the
        /// payload with an RDMA READ).
        src_rkey: Option<MrKey>,
        src_req: usize,
        src_pid: Pid,
        /// Stable per-transfer id of the send side.
        msg_id: u64,
        /// CRC32 of the payload at post time (end-to-end integrity;
        /// `None` unless the run arms payload faults).
        crc: Option<u32>,
        /// Highest seq this host has contiguously completed (FIN-journal
        /// truncation horizon; 0 unless the journal cap is armed).
        ack_horizon: u64,
        /// Tenant of the posting rank (0 in single-tenant runs). The
        /// proxy partitions its descriptor pool, staging pool and
        /// journal by this id.
        tenant: usize,
    },
    /// Ready-to-receive: destination host → source-side proxy.
    Rtr {
        src_rank: usize,
        dst_rank: usize,
        tag: u64,
        addr: VAddr,
        len: u64,
        rkey: MrKey,
        dst_req: usize,
        dst_pid: Pid,
        /// Stable per-transfer id of the receive side.
        msg_id: u64,
        /// Completion horizon of the receiving host (see `Rts`).
        ack_horizon: u64,
        /// Tenant of the posting rank (see `Rts`).
        tenant: usize,
    },
    /// Completion to the source host.
    FinSend {
        req: usize,
        msg_id: u64,
        /// Free descriptor-queue slots at the sending proxy when the FIN
        /// left (credit piggyback; 0 unless the queue cap is armed).
        credit: u32,
    },
    /// Completion to the destination host.
    FinRecv {
        req: usize,
        msg_id: u64,
        /// Credit piggyback (see `FinSend`).
        credit: u32,
    },
    /// Admission refused: the proxy's descriptor queues are at their
    /// configured cap. The host re-posts the original ctrl message after
    /// a backoff (backpressure, not failure).
    QueueFull { msg_id: u64 },
    /// Cancel an in-flight basic request (deadline expiry or an explicit
    /// application cancel). The proxy reaps matching queued descriptors
    /// and suppresses late matches for this transfer id.
    Cancel { msg_id: u64 },
    /// Typed data-plane failure: the proxy exhausted the bounded payload
    /// retransmission budget for this transfer.
    DataError {
        req: usize,
        msg_id: u64,
        attempts: u32,
        /// True when the transfer was shed by the per-peer data retry
        /// budget rather than exhausting `data_retx_max`; the host maps
        /// this onto [`OffloadError::RetryBudgetExhausted`].
        ///
        /// [`OffloadError::RetryBudgetExhausted`]: crate::OffloadError::RetryBudgetExhausted
        shed: bool,
    },
    /// Typed data-plane failure for a group entry: the owning host fails
    /// the whole generation.
    GroupDataError {
        req_id: usize,
        gen: u64,
        attempts: u32,
    },

    // ---- Group primitives (paper Figs. 9-10, Algorithm 1) ----
    /// Receive-side metadata sent host→host during the gather phase:
    /// for each of my receives from `src_rank`, the buffer it may write.
    RecvMeta {
        dst_rank: usize,
        dst_req_id: usize,
        /// `(tag, addr, rkey)` in recv-entry order.
        entries: Vec<(u64, VAddr, MrKey)>,
    },
    /// Full group offload packet: host → its mapped proxy (first call, or
    /// every call when the group cache is disabled).
    GroupPacket {
        key: GroupKey,
        gen: u64,
        entries: Vec<WireEntry>,
        host_pid: Pid,
    },
    /// Cached execution: host → proxy, metadata already resident.
    GroupExec { key: GroupKey, gen: u64 },
    /// Completion: proxy → host.
    GroupFin { req_id: usize, gen: u64 },
    /// Barrier counter written by the source-side proxy into the
    /// destination-side proxy (paper Algorithm 1, `writeRemoteBarrierCntr`).
    BarrierCntr {
        src_rank: usize,
        dst_key: GroupKey,
        gen: u64,
        value: u64,
    },
    /// Arrival marker delivered to the destination-side proxy together
    /// with the data write (the per-write completion counter that lets a
    /// worker "know the receive completion progress of its locally mapped
    /// host process").
    GroupArrival {
        src_rank: usize,
        tag: u64,
        dst_key: GroupKey,
        gen: u64,
        /// The wire entry's msg_id: arrival accounting is keyed on it so
        /// a replayed data write (proxy-restart recovery) is idempotent.
        msg_id: u64,
    },

    // ---- One-sided (SHMEM-style) extensions ----
    /// Offloaded one-sided put: no receiver involvement — the destination
    /// buffer and rkey are known up-front (symmetric heap). The proxy
    /// moves the data exactly like a matched send/recv pair.
    Put {
        src_rank: usize,
        addr: VAddr,
        len: u64,
        /// GVMI mkey (GVMI path).
        mkey: Option<MrKey>,
        /// Source rkey (staging path: worker read).
        src_rkey: Option<MrKey>,
        dst_rank: usize,
        dst_addr: VAddr,
        dst_rkey: MrKey,
        src_req: usize,
        src_pid: Pid,
        /// Stable per-transfer id of the put.
        msg_id: u64,
    },
    /// Offloaded one-sided get (GVMI only): the proxy cross-registers the
    /// origin's destination buffer (mkey → mkey2) and RDMA-READs the
    /// remote symmetric memory into it.
    Get {
        src_rank: usize,
        local_addr: VAddr,
        len: u64,
        /// GVMI mkey over the origin's destination buffer.
        local_mkey: MrKey,
        remote_rank: usize,
        remote_addr: VAddr,
        remote_rkey: MrKey,
        src_req: usize,
        src_pid: Pid,
        /// Stable per-transfer id of the get.
        msg_id: u64,
    },
    /// Symmetric-heap info exchanged rank-to-rank at `Shmem` startup.
    ShmemHello {
        rank: usize,
        heap_base: VAddr,
        heap_rkey: MrKey,
    },

    // ---- Lifecycle ----
    /// A mapped host rank is done with the framework.
    Shutdown { rank: usize },

    // ---- Reliability layer (DESIGN.md §13) ----
    /// Sequence-numbered envelope around any ctrl message. Present only
    /// when the run's [`crate::FaultPlan`] arms the reliability layer.
    Seq {
        /// Per-sender sequence number (unique per (from, epoch)).
        seq: u64,
        /// Sending process (dedup key at the receiver).
        from: Pid,
        /// Sending endpoint (where the ack goes).
        from_ep: EpId,
        /// Sender's restart epoch; a receiver treats (from, epoch, seq)
        /// as the dedup key so a restarted sender starts fresh.
        epoch: u64,
        /// The enveloped ctrl message.
        inner: Box<CtrlMsg>,
    },
    /// Acknowledgement of one [`CtrlMsg::Seq`] envelope.
    Ack { seq: u64 },
    /// Self-delivered retransmission timer (virtual time): when it fires
    /// and `seq` is still unacked, the sender retransmits with backoff.
    RetxTick { seq: u64 },
    /// Self-delivered data-path retransmission timer (proxy): re-post the
    /// payload write tracked under `token` (CRC verification failed).
    DataRetxTick { token: u64 },
    /// Self-delivered deadline timer (host): if request `req` is still in
    /// flight when it fires, the request fails with a typed timeout and a
    /// [`CtrlMsg::Cancel`] is sent to the proxy.
    DeadlineTick { req: usize },
    /// Self-delivered backpressure retry timer (host): attempt to flush
    /// credit-deferred posts.
    BackpressureTick,
    /// Restart notice: a proxy that crashed and came back announces its
    /// new epoch so hosts invalidate cached registrations and group
    /// metadata and replay in-flight requests.
    ProxyRestarted {
        /// The restarted proxy's endpoint.
        proxy: EpId,
        /// Its post-restart epoch (monotonically increasing).
        epoch: u64,
    },
}

impl CtrlMsg {
    /// Message kind, for event attribution ([`CtrlKind`]).
    pub(crate) fn kind(&self) -> CtrlKind {
        match self {
            CtrlMsg::Rts { .. } => CtrlKind::Rts,
            CtrlMsg::Rtr { .. } => CtrlKind::Rtr,
            CtrlMsg::FinSend { .. } => CtrlKind::FinSend,
            CtrlMsg::FinRecv { .. } => CtrlKind::FinRecv,
            CtrlMsg::RecvMeta { .. } => CtrlKind::RecvMeta,
            CtrlMsg::GroupPacket { .. } => CtrlKind::GroupPacket,
            CtrlMsg::GroupExec { .. } => CtrlKind::GroupExec,
            CtrlMsg::GroupFin { .. } => CtrlKind::GroupFin,
            CtrlMsg::BarrierCntr { .. } => CtrlKind::BarrierCntr,
            CtrlMsg::GroupArrival { .. } => CtrlKind::GroupArrival,
            CtrlMsg::Put { .. } => CtrlKind::Put,
            CtrlMsg::Get { .. } => CtrlKind::Get,
            CtrlMsg::ShmemHello { .. } => CtrlKind::ShmemHello,
            CtrlMsg::Shutdown { .. } => CtrlKind::Shutdown,
            CtrlMsg::Seq { .. } => CtrlKind::Seq,
            CtrlMsg::Ack { .. } => CtrlKind::Ack,
            CtrlMsg::RetxTick { .. }
            | CtrlMsg::DataRetxTick { .. }
            | CtrlMsg::DeadlineTick { .. }
            | CtrlMsg::BackpressureTick => CtrlKind::RetxTick,
            CtrlMsg::QueueFull { .. } => CtrlKind::QueueFull,
            CtrlMsg::Cancel { .. } => CtrlKind::Cancel,
            CtrlMsg::DataError { .. } | CtrlMsg::GroupDataError { .. } => CtrlKind::DataError,
            CtrlMsg::ProxyRestarted { .. } => CtrlKind::ProxyRestarted,
        }
    }

    /// The transfer id this message is about, where one exists (0
    /// otherwise). Used to attribute drops/retransmits to a transfer.
    pub(crate) fn msg_id_hint(&self) -> u64 {
        match self {
            CtrlMsg::Rts { msg_id, .. }
            | CtrlMsg::Rtr { msg_id, .. }
            | CtrlMsg::FinSend { msg_id, .. }
            | CtrlMsg::FinRecv { msg_id, .. }
            | CtrlMsg::Put { msg_id, .. }
            | CtrlMsg::Get { msg_id, .. }
            | CtrlMsg::GroupArrival { msg_id, .. }
            | CtrlMsg::QueueFull { msg_id }
            | CtrlMsg::Cancel { msg_id }
            | CtrlMsg::DataError { msg_id, .. } => *msg_id,
            _ => 0,
        }
    }
}
