//! Group-primitive behaviour: the ring pattern of paper Listing 5,
//! barrier-ordered dependent graphs, metadata caching, repeated calls, and
//! the staging variant.

use offload::{GroupRequest, Offload, OffloadConfig};
use rdma::{ClusterBuilder, ClusterSpec, Inbox};
use simnet::SimDelta;

fn run_offload(
    nodes: usize,
    ppn: usize,
    cfg: OffloadConfig,
    f: impl Fn(&Offload) + Send + Sync + 'static,
) -> simnet::Report {
    let spec = ClusterSpec::new(nodes, ppn);
    let pcfg = cfg.clone();
    ClusterBuilder::new(spec, 23)
        .run(
            move |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(rank, ctx, cluster, &inbox, cfg.clone());
                f(&off);
                off.finalize();
            },
            Some(offload::proxy_fn(pcfg)),
        )
        .unwrap()
}

/// Record the ring broadcast of paper Listing 5 into a group request.
fn record_ring(off: &Offload, buf: rdma::VAddr, len: u64, root: usize) -> GroupRequest {
    let p = off.size();
    let me = off.rank();
    let left = (me + p - 1) % p;
    let right = (me + 1) % p;
    let g = off.group_start();
    if me == root {
        off.group_send(g, buf, len, right, 4);
        off.group_barrier(g);
    } else {
        off.group_recv(g, buf, len, left, 4);
        off.group_barrier(g);
        if right != root {
            off.group_send(g, buf, len, right, 4);
        }
    }
    off.group_end(g);
    g
}

#[test]
fn ring_broadcast_delivers_to_all() {
    run_offload(3, 1, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 32 * 1024;
        let buf = fab.alloc(ep, len);
        if off.rank() == 0 {
            fab.fill_pattern(ep, buf, len, 42).unwrap();
        }
        let g = record_ring(off, buf, len, 0);
        off.group_call(g);
        off.group_wait(g).expect("group offload failed");
        assert!(
            fab.verify_pattern(ep, buf, len, 42).unwrap(),
            "rank {} has the ring data",
            off.rank()
        );
    });
}

#[test]
fn ring_progresses_without_cpu_intervention() {
    // The Fig. 1 case (3): every rank offloads its whole pattern, then
    // computes. The ring completes during the compute phase.
    run_offload(4, 1, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 64 * 1024;
        let buf = fab.alloc(ep, len);
        if off.rank() == 0 {
            fab.fill_pattern(ep, buf, len, 5).unwrap();
        }
        let g = record_ring(off, buf, len, 0);
        off.group_call(g);
        off.ctx().compute(SimDelta::from_ms(20));
        let t0 = off.ctx().now();
        off.group_wait(g).expect("group offload failed");
        let wait = (off.ctx().now() - t0).as_us_f64();
        assert!(
            wait < 1.0,
            "ring should finish during compute; waited {wait}us"
        );
        assert!(fab.verify_pattern(ep, buf, len, 5).unwrap());
    });
}

#[test]
fn repeated_calls_reuse_metadata() {
    let report = run_offload(2, 1, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 16 * 1024;
        let buf = fab.alloc(ep, len);
        if off.rank() == 0 {
            fab.fill_pattern(ep, buf, len, 1).unwrap();
        }
        let g = record_ring(off, buf, len, 0);
        for _ in 0..5 {
            off.group_call(g);
            off.group_wait(g).expect("group offload failed");
        }
        assert!(fab.verify_pattern(ep, buf, len, 1).unwrap());
    });
    // One full packet per rank, then small execs.
    assert_eq!(report.stats.counter("offload.group.packets"), 2);
    assert_eq!(report.stats.counter("offload.group.execs"), 2 * 4);
}

#[test]
fn group_cache_ablation_resends_packets() {
    let cfg = OffloadConfig::proposed().without_group_cache();
    let report = run_offload(2, 1, cfg, |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let buf = fab.alloc(ep, 4096);
        let g = record_ring(off, buf, 4096, 0);
        for _ in 0..3 {
            off.group_call(g);
            off.group_wait(g).expect("group offload failed");
        }
    });
    assert_eq!(report.stats.counter("offload.group.packets"), 2 * 3);
    assert_eq!(report.stats.counter("offload.group.execs"), 0);
}

#[test]
fn group_alltoall_exchanges_blocks() {
    run_offload(2, 2, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let p = off.size();
        let me = off.rank();
        let ep = off.cluster().host_ep(me);
        let block = 8 * 1024u64;
        let sendbuf = fab.alloc(ep, block * p as u64);
        let recvbuf = fab.alloc(ep, block * p as u64);
        for d in 0..p {
            fab.fill_pattern(
                ep,
                sendbuf.offset(d as u64 * block),
                block,
                (me * 100 + d) as u64,
            )
            .unwrap();
        }
        // Scatter-destination personalized exchange as one group.
        let g = off.group_start();
        for k in 1..p {
            let dst = (me + k) % p;
            let src = (me + p - k) % p;
            off.group_send(
                g,
                sendbuf.offset(dst as u64 * block),
                block,
                dst,
                dst as u64,
            );
            off.group_recv(g, recvbuf.offset(src as u64 * block), block, src, me as u64);
        }
        off.group_end(g);
        off.group_call(g);
        off.group_wait(g).expect("group offload failed");
        // Local block copied by the app itself.
        for s in 0..p {
            if s == me {
                continue;
            }
            assert!(
                fab.verify_pattern(
                    ep,
                    recvbuf.offset(s as u64 * block),
                    block,
                    (s * 100 + me) as u64
                )
                .unwrap(),
                "rank {me} block from {s}"
            );
        }
    });
}

#[test]
fn staging_group_ring_works() {
    run_offload(3, 1, OffloadConfig::staging(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 32 * 1024;
        let buf = fab.alloc(ep, len);
        if off.rank() == 0 {
            fab.fill_pattern(ep, buf, len, 8).unwrap();
        }
        let g = record_ring(off, buf, len, 0);
        off.group_call(g);
        off.group_wait(g).expect("group offload failed");
        assert!(fab.verify_pattern(ep, buf, len, 8).unwrap());
    });
}

#[test]
fn staging_group_repeated_calls_restage_data() {
    // Each generation ships fresh payload bytes through the staging
    // buffers: changing the source must change what arrives.
    run_offload(2, 1, OffloadConfig::staging(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 4096;
        let buf = fab.alloc(ep, len);
        let g = record_ring(off, buf, len, 0);
        for round in 0..3u64 {
            if off.rank() == 0 {
                fab.fill_pattern(ep, buf, len, 100 + round).unwrap();
            }
            off.group_call(g);
            off.group_wait(g).expect("group offload failed");
            assert!(
                fab.verify_pattern(ep, buf, len, 100 + round).unwrap(),
                "round {round} payload"
            );
        }
    });
}

#[test]
fn barrier_orders_dependent_steps() {
    // Pipeline: 0 -> 1 -> 2 where rank 1 forwards a *different* buffer
    // filled from the received one... simplified: rank 1 forwards the same
    // buffer it received into; without the barrier the forward could race
    // the receive. With the barrier, rank 2 must see rank 0's data.
    run_offload(3, 1, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 16 * 1024;
        let buf = fab.alloc(ep, len);
        match off.rank() {
            0 => fab.fill_pattern(ep, buf, len, 55).unwrap(),
            1 => fab.fill_pattern(ep, buf, len, 66).unwrap(), // must be overwritten
            _ => {}
        }
        let g = off.group_start();
        match off.rank() {
            0 => off.group_send(g, buf, len, 1, 0),
            1 => {
                off.group_recv(g, buf, len, 0, 0);
                off.group_barrier(g);
                off.group_send(g, buf, len, 2, 1);
            }
            _ => off.group_recv(g, buf, len, 1, 1),
        }
        off.group_end(g);
        off.group_call(g);
        off.group_wait(g).expect("group offload failed");
        if off.rank() == 2 {
            assert!(
                fab.verify_pattern(ep, buf, len, 55).unwrap(),
                "rank 2 must receive rank 0's data, not rank 1's stale bytes"
            );
        }
    });
}

#[test]
fn multiple_groups_coexist() {
    run_offload(2, 1, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let a = fab.alloc(ep, 1024);
        let b = fab.alloc(ep, 1024);
        if off.rank() == 0 {
            fab.fill_pattern(ep, a, 1024, 1).unwrap();
            fab.fill_pattern(ep, b, 1024, 2).unwrap();
        }
        let g1 = record_ring(off, a, 1024, 0);
        let g2 = record_ring(off, b, 1024, 0);
        off.group_call(g1);
        off.group_call(g2);
        off.group_wait(g1).expect("group offload failed");
        off.group_wait(g2).expect("group offload failed");
        assert!(fab.verify_pattern(ep, a, 1024, 1).unwrap());
        assert!(fab.verify_pattern(ep, b, 1024, 2).unwrap());
    });
}

#[test]
fn group_test_is_nonblocking() {
    run_offload(2, 1, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let buf = fab.alloc(ep, 256 * 1024);
        if off.rank() == 0 {
            fab.fill_pattern(ep, buf, 256 * 1024, 9).unwrap();
        }
        let g = record_ring(off, buf, 256 * 1024, 0);
        off.group_call(g);
        // Poll until done, Listing-1 style but against group_test.
        let mut polls = 0;
        while !off.group_test(g) {
            off.ctx().compute(SimDelta::from_us(20));
            polls += 1;
            assert!(polls < 100_000, "group never completed");
        }
        assert!(fab.verify_pattern(ep, buf, 256 * 1024, 9).unwrap());
    });
}
