//! Basic-primitive behaviour: data integrity on both data paths, DPU-driven
//! progress during host compute, matching, caches, and clean shutdown.

use offload::{Offload, OffloadConfig};
use rdma::{ClusterBuilder, ClusterSpec, Inbox};
use simnet::SimDelta;

fn run_offload(
    nodes: usize,
    ppn: usize,
    cfg: OffloadConfig,
    f: impl Fn(&Offload) + Send + Sync + 'static,
) -> simnet::Report {
    let spec = ClusterSpec::new(nodes, ppn);
    let pcfg = cfg.clone();
    ClusterBuilder::new(spec, 11)
        .run(
            move |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(rank, ctx, cluster, &inbox, cfg.clone());
                f(&off);
                off.finalize();
            },
            Some(offload::proxy_fn(pcfg)),
        )
        .unwrap()
}

fn pingpong_body(off: &Offload, len: u64) {
    let fab = off.cluster().fabric().clone();
    let ep = off.cluster().host_ep(off.rank());
    let sbuf = fab.alloc(ep, len);
    let rbuf = fab.alloc(ep, len);
    if off.rank() == 0 {
        fab.fill_pattern(ep, sbuf, len, 10).unwrap();
        let s = off.send_offload(sbuf, len, 1, 7);
        let r = off.recv_offload(rbuf, len, 1, 8);
        off.wait(s);
        off.wait(r);
        assert!(fab.verify_pattern(ep, rbuf, len, 20).unwrap());
    } else {
        fab.fill_pattern(ep, sbuf, len, 20).unwrap();
        let r = off.recv_offload(rbuf, len, 0, 7);
        let s = off.send_offload(sbuf, len, 0, 8);
        off.wait(r);
        off.wait(s);
        assert!(fab.verify_pattern(ep, rbuf, len, 10).unwrap());
    }
}

#[test]
fn gvmi_pingpong_moves_data() {
    run_offload(2, 1, OffloadConfig::proposed(), |off| {
        pingpong_body(off, 64 * 1024)
    });
}

#[test]
fn staging_pingpong_moves_data() {
    run_offload(2, 1, OffloadConfig::staging(), |off| {
        pingpong_body(off, 64 * 1024)
    });
}

#[test]
fn gvmi_beats_staging_latency() {
    // Paper Fig. 4 / Fig. 6: the staging hop costs extra latency.
    fn measure(cfg: OffloadConfig) -> f64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let total = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&total);
        run_offload(2, 1, cfg, move |off| {
            let fab = off.cluster().fabric().clone();
            let ep = off.cluster().host_ep(off.rank());
            let len = 256 * 1024;
            let buf = fab.alloc(ep, len);
            // Warm caches first.
            for warm in 0..2 {
                let t0 = off.ctx().now();
                if off.rank() == 0 {
                    off.wait(off.send_offload(buf, len, 1, warm));
                    off.wait(off.recv_offload(buf, len, 1, 100 + warm));
                } else {
                    off.wait(off.recv_offload(buf, len, 0, warm));
                    off.wait(off.send_offload(buf, len, 0, 100 + warm));
                }
                if warm == 1 && off.rank() == 0 {
                    t2.store((off.ctx().now() - t0).as_ps(), Ordering::SeqCst);
                }
            }
        });
        total.load(Ordering::SeqCst) as f64 / 1e6
    }
    let gvmi = measure(OffloadConfig::proposed());
    let staging = measure(OffloadConfig::staging());
    assert!(
        staging > gvmi * 1.25,
        "staging ({staging}us) should be well above GVMI ({gvmi}us)"
    );
}

#[test]
fn transfer_progresses_while_host_computes() {
    // The whole point of the framework: the DPU completes the exchange
    // while both hosts are busy. When they finally call wait, the FIN is
    // already in the mailbox, so wait returns without advancing time.
    run_offload(2, 1, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 1 << 20;
        let buf = fab.alloc(ep, len);
        let req = if off.rank() == 0 {
            off.send_offload(buf, len, 1, 1)
        } else {
            off.recv_offload(buf, len, 0, 1)
        };
        off.ctx().compute(SimDelta::from_ms(10));
        let t0 = off.ctx().now();
        off.wait(req);
        let wait_time = (off.ctx().now() - t0).as_us_f64();
        assert!(
            wait_time < 1.0,
            "wait should be instant after long compute, took {wait_time}us"
        );
    });
}

#[test]
fn many_outstanding_transfers_match_by_tag() {
    run_offload(2, 1, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let n = 8u64;
        let len = 4096;
        let bufs: Vec<_> = (0..n).map(|_| fab.alloc(ep, len)).collect();
        if off.rank() == 0 {
            let reqs: Vec<_> = bufs
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    fab.fill_pattern(ep, b, len, i as u64).unwrap();
                    // Post in reverse tag order to exercise matching.
                    off.send_offload(b, len, 1, (n - 1 - i as u64) * 3)
                })
                .collect();
            off.wait_all(&reqs);
        } else {
            let reqs: Vec<_> = bufs
                .iter()
                .enumerate()
                .map(|(i, &b)| off.recv_offload(b, len, 0, i as u64 * 3))
                .collect();
            off.wait_all(&reqs);
            for (i, &b) in bufs.iter().enumerate() {
                // Tag i*3 was sent from buffer n-1-i.
                assert!(
                    fab.verify_pattern(ep, b, len, (n as usize - 1 - i) as u64)
                        .unwrap(),
                    "tag stream {i}"
                );
            }
        }
    });
}

#[test]
fn gvmi_caches_hit_on_reuse() {
    let report = run_offload(2, 1, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 64 * 1024;
        let buf = fab.alloc(ep, len);
        for i in 0..6u64 {
            if off.rank() == 0 {
                off.wait(off.send_offload(buf, len, 1, i));
            } else {
                off.wait(off.recv_offload(buf, len, 0, i));
            }
        }
    });
    // Host GVMI cache: 1 miss, 5 hits (sender side only).
    assert_eq!(report.stats.counter("offload.gvmi_cache.host.miss"), 1);
    assert_eq!(report.stats.counter("offload.gvmi_cache.host.hit"), 5);
    // DPU cross-registration cache mirrors that.
    assert_eq!(report.stats.counter("offload.gvmi_cache.dpu.miss"), 1);
    assert_eq!(report.stats.counter("offload.gvmi_cache.dpu.hit"), 5);
}

#[test]
fn cache_ablation_registers_every_time() {
    let cfg = OffloadConfig::proposed().without_gvmi_cache();
    let report = run_offload(2, 1, cfg, |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 64 * 1024;
        let buf = fab.alloc(ep, len);
        for i in 0..4u64 {
            if off.rank() == 0 {
                off.wait(off.send_offload(buf, len, 1, i));
            } else {
                off.wait(off.recv_offload(buf, len, 0, i));
            }
        }
    });
    assert_eq!(report.stats.counter("offload.gvmi_cache.host.hit"), 0);
    assert_eq!(report.stats.counter("rdma.reg.cross"), 4);
}

#[test]
fn cache_ablation_costs_time() {
    fn end_time(cfg: OffloadConfig) -> f64 {
        run_offload(2, 1, cfg, |off| {
            let fab = off.cluster().fabric().clone();
            let ep = off.cluster().host_ep(off.rank());
            let len = 1 << 20;
            let buf = fab.alloc(ep, len);
            for i in 0..10u64 {
                if off.rank() == 0 {
                    off.wait(off.send_offload(buf, len, 1, i));
                } else {
                    off.wait(off.recv_offload(buf, len, 0, i));
                }
            }
        })
        .end_time
        .as_us_f64()
    }
    let with_cache = end_time(OffloadConfig::proposed());
    let without = end_time(OffloadConfig::proposed().without_gvmi_cache());
    assert!(
        without > with_cache,
        "uncached registrations must cost time: {without} <= {with_cache}"
    );
}

#[test]
fn staging_reuses_buffers_and_registrations() {
    let report = run_offload(2, 1, OffloadConfig::staging(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 32 * 1024;
        let buf = fab.alloc(ep, len);
        for i in 0..5u64 {
            if off.rank() == 0 {
                off.wait(off.send_offload(buf, len, 1, i));
            } else {
                off.wait(off.recv_offload(buf, len, 0, i));
            }
        }
    });
    // Every transfer pulls into staging and forwards (two hops each).
    assert_eq!(report.stats.counter("offload.proxy.staging_reads"), 5);
    assert_eq!(report.stats.counter("offload.proxy.staging_forwards"), 5);
    // One staging buffer serves all five transfers of the same source.
    assert_eq!(report.stats.counter("offload.proxy.staging_buffers"), 1);
    // Host IB registrations are cached: sender rkey + receiver rkey.
    assert_eq!(report.stats.counter("offload.ib_cache.host.miss"), 2);
    assert_eq!(report.stats.counter("offload.ib_cache.host.hit"), 8);
}

#[test]
fn four_control_messages_per_basic_transfer() {
    // Paper §VIII-C: RTS + RTR + two FINs per send/recv pair.
    let report = run_offload(2, 1, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let buf = fab.alloc(ep, 4096);
        for i in 0..3u64 {
            if off.rank() == 0 {
                off.wait(off.send_offload(buf, 4096, 1, i));
            } else {
                off.wait(off.recv_offload(buf, 4096, 0, i));
            }
        }
    });
    assert_eq!(report.stats.counter("offload.ctrl.host_dpu"), 3 * 4);
}

#[test]
fn multiple_ranks_per_node_share_proxies() {
    let report = run_offload(2, 4, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let me = off.rank();
        let p = off.size();
        let ep = off.cluster().host_ep(me);
        let len = 8192;
        let sbuf = fab.alloc(ep, len);
        let rbuf = fab.alloc(ep, len);
        fab.fill_pattern(ep, sbuf, len, me as u64).unwrap();
        let dst = (me + 1) % p;
        let src = (me + p - 1) % p;
        let s = off.send_offload(sbuf, len, dst, 9);
        let r = off.recv_offload(rbuf, len, src, 9);
        off.wait(s);
        off.wait(r);
        assert!(fab.verify_pattern(ep, rbuf, len, src as u64).unwrap());
    });
    assert!(report.stats.counter("offload.proxy.gvmi_writes") == 8);
}

#[test]
fn intra_node_offload_works() {
    // Both ranks on one node: data path goes through shared memory but the
    // control protocol is identical.
    run_offload(1, 2, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let buf = fab.alloc(ep, 2048);
        if off.rank() == 0 {
            fab.fill_pattern(ep, buf, 2048, 3).unwrap();
            off.wait(off.send_offload(buf, 2048, 1, 0));
        } else {
            off.wait(off.recv_offload(buf, 2048, 0, 0));
            assert!(fab.verify_pattern(ep, buf, 2048, 3).unwrap());
        }
    });
}
