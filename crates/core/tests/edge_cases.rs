//! Offload-framework edge cases: self-transfers, zero/odd sizes, proxy
//! fan-out, concurrent group and basic traffic, and cache-correctness
//! under buffer churn.

use offload::{Offload, OffloadConfig};
use rdma::{ClusterBuilder, ClusterSpec, Inbox};

fn run_offload(
    nodes: usize,
    ppn: usize,
    proxies: Option<usize>,
    cfg: OffloadConfig,
    f: impl Fn(&Offload) + Send + Sync + 'static,
) -> simnet::Report {
    let mut spec = ClusterSpec::new(nodes, ppn);
    if let Some(p) = proxies {
        spec = spec.with_proxies(p);
    }
    let pcfg = cfg.clone();
    ClusterBuilder::new(spec, 99)
        .run(
            move |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(rank, ctx, cluster, &inbox, cfg.clone());
                f(&off);
                off.finalize();
            },
            Some(offload::proxy_fn(pcfg)),
        )
        .unwrap()
}

#[test]
fn self_send_through_the_proxy_works() {
    // A rank offloading a transfer to itself: RTS and RTR meet at the same
    // proxy and the data loops back through host memory.
    run_offload(1, 1, None, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(0);
        let src = fab.alloc(ep, 4096);
        let dst = fab.alloc(ep, 4096);
        fab.fill_pattern(ep, src, 4096, 3).unwrap();
        let s = off.send_offload(src, 4096, 0, 1);
        let r = off.recv_offload(dst, 4096, 0, 1);
        off.wait(s);
        off.wait(r);
        assert!(fab.verify_pattern(ep, dst, 4096, 3).unwrap());
    });
}

#[test]
fn one_byte_and_odd_sizes() {
    run_offload(2, 1, None, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        for (i, len) in [1u64, 3, 17, 4095, 4097, 65537].into_iter().enumerate() {
            let buf = fab.alloc(ep, len);
            if off.rank() == 0 {
                fab.fill_pattern(ep, buf, len, i as u64).unwrap();
                off.wait(off.send_offload(buf, len, 1, i as u64));
            } else {
                off.wait(off.recv_offload(buf, len, 0, i as u64));
                assert!(
                    fab.verify_pattern(ep, buf, len, i as u64).unwrap(),
                    "len {len}"
                );
            }
        }
    });
}

#[test]
fn more_proxies_spread_protocol_handling() {
    // DESIGN.md ablation 5: with one proxy per DPU all queue handling
    // chains on one ARM timeline; more proxies cannot be slower.
    fn comm_time(proxies: usize) -> f64 {
        let report = run_offload(2, 8, Some(proxies), OffloadConfig::proposed(), |off| {
            let fab = off.cluster().fabric().clone();
            let me = off.rank();
            let p = off.size();
            let ep = off.cluster().host_ep(me);
            let len = 16 * 1024;
            let sbuf = fab.alloc(ep, len);
            let rbuf = fab.alloc(ep, len);
            // Dense exchange so the proxies have real queues to chew on.
            for round in 0..4u64 {
                let mut reqs = Vec::new();
                for k in 1..p {
                    let dst = (me + k) % p;
                    let src = (me + p - k) % p;
                    reqs.push(off.send_offload(sbuf, len, dst, round * 64 + k as u64));
                    reqs.push(off.recv_offload(rbuf, len, src, round * 64 + k as u64));
                }
                off.wait_all(&reqs);
            }
        });
        report.end_time.as_us_f64()
    }
    let one = comm_time(1);
    let four = comm_time(4);
    assert!(
        four < one,
        "4 proxies ({four}us) should beat 1 proxy ({one}us)"
    );
}

#[test]
fn basic_and_group_traffic_interleave() {
    run_offload(2, 2, None, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let me = off.rank();
        let p = off.size();
        let ep = off.cluster().host_ep(me);
        let len = 8192u64;
        // Group alltoall in flight...
        let sendbuf = fab.alloc(ep, len * p as u64);
        let recvbuf = fab.alloc(ep, len * p as u64);
        for d in 0..p {
            fab.fill_pattern(
                ep,
                sendbuf.offset(d as u64 * len),
                len,
                (me * 50 + d) as u64,
            )
            .unwrap();
        }
        let g = off.record_alltoall(sendbuf, recvbuf, len);
        off.group_call(g);
        // ...while basic transfers run on the same proxies.
        let pbuf = fab.alloc(ep, len);
        let qbuf = fab.alloc(ep, len);
        fab.fill_pattern(ep, pbuf, len, 900 + me as u64).unwrap();
        let peer = (me + 1) % p;
        let from = (me + p - 1) % p;
        let s = off.send_offload(pbuf, len, peer, 7);
        let r = off.recv_offload(qbuf, len, from, 7);
        off.wait(s);
        off.wait(r);
        off.group_wait(g).expect("group offload failed");
        assert!(fab
            .verify_pattern(ep, qbuf, len, 900 + from as u64)
            .unwrap());
        for s in 0..p {
            if s != me {
                assert!(fab
                    .verify_pattern(
                        ep,
                        recvbuf.offset(s as u64 * len),
                        len,
                        (s * 50 + me) as u64
                    )
                    .unwrap());
            }
        }
    });
}

#[test]
fn stale_mkey_is_detected_by_the_dpu_cache() {
    // Deregister + re-register the same buffer: the host presents a new
    // mkey, and the DPU's validated cache must not reuse the stale mkey2.
    let report = run_offload(2, 1, None, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 32 * 1024;
        let buf = fab.alloc(ep, len);
        if off.rank() == 0 {
            fab.fill_pattern(ep, buf, len, 1).unwrap();
            off.wait(off.send_offload(buf, len, 1, 0));
        } else {
            off.wait(off.recv_offload(buf, len, 0, 0));
        }
    });
    // Sanity: one cross-registration happened, zero stale evictions in
    // this benign run (the stale path is unit-tested in reg_cache).
    assert_eq!(report.stats.counter("offload.gvmi_cache.dpu.stale"), 0);
    assert!(report.stats.counter("rdma.reg.cross") >= 1);
}

#[test]
fn group_with_only_sends_or_only_recvs_completes() {
    // Degenerate graphs: rank 0 records only sends, rank 1 only recvs.
    run_offload(2, 1, None, OffloadConfig::proposed(), |off| {
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 2048u64;
        let bufs: Vec<_> = (0..3).map(|_| fab.alloc(ep, len)).collect();
        let g = off.group_start();
        if off.rank() == 0 {
            for (i, &b) in bufs.iter().enumerate() {
                fab.fill_pattern(ep, b, len, i as u64).unwrap();
                off.group_send(g, b, len, 1, i as u64);
            }
        } else {
            for (i, &b) in bufs.iter().enumerate() {
                off.group_recv(g, b, len, 0, i as u64);
            }
        }
        off.group_end(g);
        off.group_call(g);
        off.group_wait(g).expect("group offload failed");
        if off.rank() == 1 {
            for (i, &b) in bufs.iter().enumerate() {
                assert!(fab.verify_pattern(ep, b, len, i as u64).unwrap());
            }
        }
    });
}
