//! Point-to-point protocol tests: eager, rendezvous, matching, wildcards,
//! ordering, and the host-progress stall that motivates the paper.

use minimpi::{Mpi, MpiConfig, ANY_SOURCE, ANY_TAG};
use rdma::{ClusterBuilder, ClusterSpec};
use simnet::SimDelta;

fn run_pair(f: impl Fn(&Mpi) + Send + Sync + 'static) {
    let spec = ClusterSpec::new(2, 1);
    ClusterBuilder::new(spec, 42)
        .run_hosts(move |rank, ctx, cluster| {
            let mpi = Mpi::new(rank, ctx, cluster, MpiConfig::default());
            f(&mpi);
        })
        .unwrap();
}

#[test]
fn eager_send_recv_moves_data() {
    run_pair(|mpi| {
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(mpi.rank());
        let buf = fab.alloc(ep, 1024);
        if mpi.rank() == 0 {
            fab.fill_pattern(ep, buf, 1024, 5).unwrap();
            mpi.send(buf, 1024, 1, 7);
        } else {
            mpi.recv(buf, 1024, 0, 7);
            assert!(fab.verify_pattern(ep, buf, 1024, 5).unwrap());
        }
    });
}

#[test]
fn rendezvous_send_recv_moves_data() {
    run_pair(|mpi| {
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(mpi.rank());
        let len = 256 * 1024; // far above eager threshold
        let buf = fab.alloc(ep, len);
        if mpi.rank() == 0 {
            fab.fill_pattern(ep, buf, len, 9).unwrap();
            mpi.send(buf, len, 1, 3);
        } else {
            mpi.recv(buf, len, 0, 3);
            assert!(fab.verify_pattern(ep, buf, len, 9).unwrap());
        }
    });
}

#[test]
fn unexpected_messages_match_later_recv() {
    run_pair(|mpi| {
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(mpi.rank());
        let buf = fab.alloc(ep, 64);
        if mpi.rank() == 0 {
            fab.fill_pattern(ep, buf, 64, 1).unwrap();
            mpi.send(buf, 64, 1, 11);
        } else {
            // Let the message land before posting the receive.
            mpi.ctx().sleep(SimDelta::from_us(100));
            mpi.recv(buf, 64, 0, 11);
            assert!(fab.verify_pattern(ep, buf, 64, 1).unwrap());
        }
    });
}

#[test]
fn tag_matching_separates_streams() {
    run_pair(|mpi| {
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(mpi.rank());
        let a = fab.alloc(ep, 32);
        let b = fab.alloc(ep, 32);
        if mpi.rank() == 0 {
            fab.fill_pattern(ep, a, 32, 100).unwrap();
            fab.fill_pattern(ep, b, 32, 200).unwrap();
            // Send tag 2 first, then tag 1.
            mpi.send(a, 32, 1, 2);
            mpi.send(b, 32, 1, 1);
        } else {
            // Receive tag 1 first: must get the *second* message.
            mpi.recv(a, 32, 0, 1);
            mpi.recv(b, 32, 0, 2);
            assert!(fab.verify_pattern(ep, a, 32, 200).unwrap());
            assert!(fab.verify_pattern(ep, b, 32, 100).unwrap());
        }
    });
}

#[test]
fn same_tag_messages_do_not_overtake() {
    run_pair(|mpi| {
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(mpi.rank());
        let bufs: Vec<_> = (0..4).map(|_| fab.alloc(ep, 64)).collect();
        if mpi.rank() == 0 {
            for (i, &b) in bufs.iter().enumerate() {
                fab.fill_pattern(ep, b, 64, i as u64).unwrap();
                mpi.send(b, 64, 1, 9);
            }
        } else {
            for (i, &b) in bufs.iter().enumerate() {
                mpi.recv(b, 64, 0, 9);
                assert!(
                    fab.verify_pattern(ep, b, 64, i as u64).unwrap(),
                    "message {i} order"
                );
            }
        }
    });
}

#[test]
fn wildcard_source_and_tag() {
    let spec = ClusterSpec::new(3, 1);
    ClusterBuilder::new(spec, 7)
        .run_hosts(|rank, ctx, cluster| {
            let mpi = Mpi::new(rank, ctx, cluster, MpiConfig::default());
            let fab = mpi.cluster().fabric().clone();
            let ep = mpi.cluster().host_ep(rank);
            let buf = fab.alloc(ep, 16);
            match rank {
                0 => {
                    // Two receives with wildcards pick up both senders.
                    mpi.recv(buf, 16, ANY_SOURCE, ANY_TAG);
                    mpi.recv(buf, 16, ANY_SOURCE, ANY_TAG);
                }
                _ => {
                    fab.fill_pattern(ep, buf, 16, rank as u64).unwrap();
                    mpi.send(buf, 16, 0, 50 + rank as u64);
                }
            }
        })
        .unwrap();
}

#[test]
fn isend_completes_without_wait_for_eager() {
    run_pair(|mpi| {
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(mpi.rank());
        let buf = fab.alloc(ep, 128);
        if mpi.rank() == 0 {
            let r = mpi.isend(buf, 128, 1, 1);
            assert!(mpi.test(r), "eager send completes locally");
        } else {
            mpi.recv(buf, 128, 0, 1);
        }
    });
}

#[test]
fn rendezvous_stalls_while_receiver_computes() {
    // The paper's Fig. 1 effect: a large transfer cannot finish while the
    // receiver is stuck in compute, because CTS needs the receiver's CPU.
    let spec = ClusterSpec::new(2, 1);
    let report = ClusterBuilder::new(spec, 1)
        .run_hosts(|rank, ctx, cluster| {
            let mpi = Mpi::new(rank, ctx.clone(), cluster.clone(), MpiConfig::default());
            let fab = cluster.fabric().clone();
            let ep = cluster.host_ep(rank);
            let len = 1 << 20;
            let buf = fab.alloc(ep, len);
            if rank == 0 {
                let t0 = ctx.now();
                mpi.send(buf, len, 1, 1);
                let elapsed = (ctx.now() - t0).as_us_f64();
                // The receiver computes 5 ms before entering MPI; the send
                // cannot complete earlier.
                assert!(
                    elapsed > 4_900.0,
                    "send finished during receiver compute: {elapsed}us"
                );
            } else {
                ctx.compute(SimDelta::from_ms(5));
                mpi.recv(buf, len, 0, 1);
            }
        })
        .unwrap();
    assert!(report.end_time.as_secs_f64() < 1.0);
}

#[test]
fn registration_cache_hits_on_buffer_reuse() {
    let spec = ClusterSpec::new(2, 1);
    let report = ClusterBuilder::new(spec, 3)
        .run_hosts(|rank, ctx, cluster| {
            let mpi = Mpi::new(rank, ctx, cluster.clone(), MpiConfig::default());
            let fab = cluster.fabric().clone();
            let ep = cluster.host_ep(rank);
            let len = 128 * 1024;
            let buf = fab.alloc(ep, len);
            for i in 0..5 {
                if rank == 0 {
                    mpi.send(buf, len, 1, i);
                } else {
                    mpi.recv(buf, len, 0, i);
                }
            }
        })
        .unwrap();
    // 5 rendezvous transfers, same buffers: 1 miss + 4 hits per side.
    assert_eq!(report.stats.counter("mpi.regcache.miss"), 2);
    assert_eq!(report.stats.counter("mpi.regcache.hit"), 8);
}

#[test]
fn compute_with_test_allows_progress() {
    run_pair(|mpi| {
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(mpi.rank());
        let len = 1 << 20;
        let buf = fab.alloc(ep, len);
        if mpi.rank() == 0 {
            mpi.send(buf, len, 1, 1);
        } else {
            let r = mpi.irecv(buf, len, 0, 1);
            // Compute 5 ms but poke MPI_Test every 50 us: transfer finishes
            // long before the compute does.
            mpi.compute_with_test(SimDelta::from_ms(5), SimDelta::from_us(50), r);
            assert!(mpi.test(r), "request done after testing loop");
        }
    });
}
