//! Property-based soak tests for the MPI engine: random message schedules
//! with sizes straddling the eager/rendezvous boundary must always match
//! correctly and deliver intact payloads.

use minimpi::{Mpi, MpiConfig};
use proptest::prelude::*;
use rdma::{ClusterBuilder, ClusterSpec};
use std::sync::Arc;

/// A randomly generated message: which pair exchanges it, its tag class
/// and its size (possibly eager, possibly rendezvous).
#[derive(Clone, Debug)]
struct Msg {
    src: usize,
    dst: usize,
    tag: u64,
    len: u64,
}

fn msgs_strategy(ranks: usize) -> impl Strategy<Value = Vec<Msg>> {
    prop::collection::vec(
        (
            0..ranks,
            0..ranks,
            0..3u64,
            prop_oneof![
                64u64..4096,        // eager
                12_000u64..20_000,  // straddles the 16 KiB threshold
                60_000u64..120_000, // rendezvous
            ],
        ),
        1..12,
    )
    .prop_map(|v| {
        v.into_iter()
            .filter(|(s, d, _, _)| s != d)
            .map(|(src, dst, tag, len)| Msg { src, dst, tag, len })
            .collect::<Vec<Msg>>()
    })
    .prop_filter("at least one message", |v| !v.is_empty())
}

fn run_schedule(msgs: Vec<Msg>, ranks: usize) {
    let msgs = Arc::new(msgs);
    let spec = ClusterSpec::new(2, ranks.div_ceil(2));
    ClusterBuilder::new(spec, 2024)
        .run_hosts(move |rank, ctx, cluster| {
            let mpi = Mpi::new(rank, ctx, cluster.clone(), MpiConfig::default());
            let fab = cluster.fabric().clone();
            let ep = cluster.host_ep(rank);
            let mut reqs = Vec::new();
            let mut recvs = Vec::new();
            // Post everything non-blocking, interleaved: sends in schedule
            // order, receives in schedule order (per-pair-and-tag streams
            // must not overtake).
            for (i, m) in msgs.iter().enumerate() {
                if m.src == rank {
                    let buf = fab.alloc(ep, m.len);
                    fab.fill_pattern(ep, buf, m.len, i as u64).unwrap();
                    reqs.push(mpi.isend(buf, m.len, m.dst, m.tag));
                }
                if m.dst == rank {
                    let buf = fab.alloc(ep, m.len);
                    recvs.push((i, buf, m.len));
                    reqs.push(mpi.irecv(buf, m.len, m.src, m.tag));
                }
            }
            mpi.wait_all(&reqs);
            // Every receive slot must hold its message's pattern... but two
            // same-(src,dst,tag) messages may map to each other's slots
            // only in posted order — which matches schedule order on both
            // sides, so slot i always gets message i.
            for (i, buf, len) in recvs {
                assert!(
                    fab.verify_pattern(ep, buf, len, i as u64).unwrap(),
                    "rank {rank}: message {i} corrupted or misrouted"
                );
            }
        })
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_schedules_deliver_intact(msgs in msgs_strategy(4)) {
        run_schedule(msgs, 4);
    }

    #[test]
    fn random_schedules_with_compute_interleaved(
        msgs in msgs_strategy(3),
        compute_us in 1u64..200,
    ) {
        // Same property, but ranks compute before waiting — rendezvous
        // must still complete through the wait-side progress.
        let msgs = Arc::new(msgs);
        let spec = ClusterSpec::new(3, 1);
        ClusterBuilder::new(spec, 11)
            .run_hosts(move |rank, ctx, cluster| {
                let mpi = Mpi::new(rank, ctx.clone(), cluster.clone(), MpiConfig::default());
                let fab = cluster.fabric().clone();
                let ep = cluster.host_ep(rank);
                let mut reqs = Vec::new();
                let mut recvs = Vec::new();
                for (i, m) in msgs.iter().enumerate() {
                    if m.src == rank {
                        let buf = fab.alloc(ep, m.len);
                        fab.fill_pattern(ep, buf, m.len, i as u64).unwrap();
                        reqs.push(mpi.isend(buf, m.len, m.dst, m.tag));
                    }
                    if m.dst == rank {
                        let buf = fab.alloc(ep, m.len);
                        recvs.push((i, buf, m.len));
                        reqs.push(mpi.irecv(buf, m.len, m.src, m.tag));
                    }
                }
                ctx.compute(simnet::SimDelta::from_us(compute_us));
                mpi.wait_all(&reqs);
                for (i, buf, len) in recvs {
                    assert!(fab.verify_pattern(ep, buf, len, i as u64).unwrap());
                }
            })
            .unwrap();
    }

    #[test]
    fn collectives_compose_randomly(ops in prop::collection::vec(0..3u8, 1..6)) {
        // A random sequence of collectives must complete and deliver.
        let ops = Arc::new(ops);
        let spec = ClusterSpec::new(2, 2);
        ClusterBuilder::new(spec, 5)
            .run_hosts(move |rank, ctx, cluster| {
                let mpi = Mpi::new(rank, ctx, cluster.clone(), MpiConfig::default());
                let fab = cluster.fabric().clone();
                let ep = cluster.host_ep(rank);
                let p = cluster.world_size();
                for (round, op) in ops.iter().enumerate() {
                    match op {
                        0 => mpi.barrier(),
                        1 => {
                            let buf = fab.alloc(ep, 2048);
                            let root = round % p;
                            if rank == root {
                                fab.fill_pattern(ep, buf, 2048, round as u64).unwrap();
                            }
                            mpi.bcast(root, buf, 2048);
                            assert!(fab.verify_pattern(ep, buf, 2048, round as u64).unwrap());
                        }
                        _ => {
                            let s = fab.alloc(ep, 1024 * p as u64);
                            let r = fab.alloc(ep, 1024 * p as u64);
                            for d in 0..p {
                                fab.fill_pattern(ep, s.offset(d as u64 * 1024), 1024,
                                    (round * 100 + rank * 10 + d) as u64).unwrap();
                            }
                            mpi.alltoall(s, r, 1024);
                            for src in 0..p {
                                assert!(fab.verify_pattern(ep, r.offset(src as u64 * 1024), 1024,
                                    (round * 100 + src * 10 + rank) as u64).unwrap());
                            }
                        }
                    }
                }
            })
            .unwrap();
    }
}
