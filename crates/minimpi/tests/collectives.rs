//! Collective correctness across odd/even sizes and multi-node layouts.

use minimpi::{Mpi, MpiConfig};
use rdma::{ClusterBuilder, ClusterSpec};

fn run_world(nodes: usize, ppn: usize, f: impl Fn(&Mpi) + Send + Sync + 'static) {
    let spec = ClusterSpec::new(nodes, ppn);
    ClusterBuilder::new(spec, 99)
        .run_hosts(move |rank, ctx, cluster| {
            let mpi = Mpi::new(rank, ctx, cluster, MpiConfig::default());
            f(&mpi);
        })
        .unwrap();
}

#[test]
fn barrier_synchronizes() {
    run_world(2, 3, |mpi| {
        // Rank 0 is late; everyone must leave the barrier after it arrives.
        if mpi.rank() == 0 {
            mpi.ctx().compute(simnet::SimDelta::from_ms(1));
        }
        let t0 = mpi.ctx().now();
        mpi.barrier();
        assert!(mpi.ctx().now() >= t0, "barrier exit after entry");
        assert!(
            mpi.ctx().now().as_us_f64() >= 1_000.0,
            "nobody exits before the last rank arrives"
        );
    });
}

fn check_bcast(nodes: usize, ppn: usize, len: u64, ring: bool) {
    let spec = ClusterSpec::new(nodes, ppn);
    ClusterBuilder::new(spec, 5)
        .run_hosts(move |rank, ctx, cluster| {
            let mpi = Mpi::new(rank, ctx, cluster.clone(), MpiConfig::default());
            let fab = cluster.fabric().clone();
            let ep = cluster.host_ep(rank);
            let buf = fab.alloc(ep, len);
            let root = 1 % mpi.size();
            if rank == root {
                fab.fill_pattern(ep, buf, len, 77).unwrap();
            }
            if ring {
                mpi.ring_bcast(root, buf, len);
            } else {
                mpi.bcast(root, buf, len);
            }
            assert!(
                fab.verify_pattern(ep, buf, len, 77).unwrap(),
                "rank {rank} has the broadcast data"
            );
        })
        .unwrap();
}

#[test]
fn binomial_bcast_small() {
    check_bcast(2, 2, 512, false);
}

#[test]
fn binomial_bcast_large_odd_world() {
    check_bcast(3, 3, 128 * 1024, false);
}

#[test]
fn ring_bcast_delivers_everywhere() {
    check_bcast(2, 3, 64 * 1024, true);
}

#[test]
fn alltoall_exchanges_all_blocks() {
    run_world(2, 3, |mpi| {
        let p = mpi.size();
        let me = mpi.rank();
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(me);
        let block = 2048u64;
        let sendbuf = fab.alloc(ep, block * p as u64);
        let recvbuf = fab.alloc(ep, block * p as u64);
        // Block for rank d carries pattern seed me*1000 + d.
        for d in 0..p {
            fab.fill_pattern(
                ep,
                sendbuf.offset(d as u64 * block),
                block,
                (me * 1000 + d) as u64,
            )
            .unwrap();
        }
        mpi.alltoall(sendbuf, recvbuf, block);
        for s in 0..p {
            assert!(
                fab.verify_pattern(
                    ep,
                    recvbuf.offset(s as u64 * block),
                    block,
                    (s * 1000 + me) as u64
                )
                .unwrap(),
                "rank {me} received block from {s}"
            );
        }
    });
}

#[test]
fn alltoall_rendezvous_blocks() {
    // Above the eager threshold, so the rendezvous path carries blocks.
    run_world(2, 2, |mpi| {
        let p = mpi.size();
        let me = mpi.rank();
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(me);
        let block = 64 * 1024u64;
        let sendbuf = fab.alloc(ep, block * p as u64);
        let recvbuf = fab.alloc(ep, block * p as u64);
        for d in 0..p {
            fab.fill_pattern(
                ep,
                sendbuf.offset(d as u64 * block),
                block,
                (me * 31 + d) as u64,
            )
            .unwrap();
        }
        mpi.alltoall(sendbuf, recvbuf, block);
        for s in 0..p {
            assert!(fab
                .verify_pattern(
                    ep,
                    recvbuf.offset(s as u64 * block),
                    block,
                    (s * 31 + me) as u64
                )
                .unwrap());
        }
    });
}

#[test]
fn allgather_collects_all_blocks() {
    run_world(3, 2, |mpi| {
        let p = mpi.size();
        let me = mpi.rank();
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(me);
        let block = 4096u64;
        let buf = fab.alloc(ep, block * p as u64);
        fab.fill_pattern(ep, buf.offset(me as u64 * block), block, me as u64 + 500)
            .unwrap();
        mpi.allgather(buf, block);
        for s in 0..p {
            assert!(
                fab.verify_pattern(ep, buf.offset(s as u64 * block), block, s as u64 + 500)
                    .unwrap(),
                "rank {me} has block of {s}"
            );
        }
    });
}

#[test]
fn ialltoall_overlaps_with_compute() {
    run_world(2, 2, |mpi| {
        let p = mpi.size();
        let me = mpi.rank();
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(me);
        let block = 1024u64;
        let sendbuf = fab.alloc(ep, block * p as u64);
        let recvbuf = fab.alloc(ep, block * p as u64);
        for d in 0..p {
            fab.fill_pattern(
                ep,
                sendbuf.offset(d as u64 * block),
                block,
                (me * 7 + d) as u64,
            )
            .unwrap();
        }
        let req = mpi.ialltoall(sendbuf, recvbuf, block);
        mpi.compute_with_test(
            simnet::SimDelta::from_us(200),
            simnet::SimDelta::from_us(10),
            req,
        );
        mpi.wait(req);
        for s in 0..p {
            assert!(fab
                .verify_pattern(
                    ep,
                    recvbuf.offset(s as u64 * block),
                    block,
                    (s * 7 + me) as u64
                )
                .unwrap());
        }
    });
}

#[test]
fn allreduce_scalars() {
    run_world(2, 3, |mpi| {
        let me = mpi.rank() as f64;
        let p = mpi.size() as f64;
        let max = mpi.allreduce_max_f64(me * 2.0);
        assert_eq!(max, (p - 1.0) * 2.0);
        let sum = mpi.allreduce_sum_f64(1.5);
        assert!((sum - 1.5 * p).abs() < 1e-9);
    });
}

#[test]
fn successive_collectives_do_not_cross_talk() {
    run_world(2, 2, |mpi| {
        let me = mpi.rank();
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(me);
        let buf = fab.alloc(ep, 256);
        for round in 0..10u64 {
            if me == 0 {
                fab.fill_pattern(ep, buf, 256, round).unwrap();
            }
            mpi.bcast(0, buf, 256);
            assert!(
                fab.verify_pattern(ep, buf, 256, round).unwrap(),
                "round {round}"
            );
        }
    });
}

#[test]
fn single_rank_world_collectives_are_noops() {
    run_world(1, 1, |mpi| {
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(0);
        let buf = fab.alloc(ep, 64);
        fab.fill_pattern(ep, buf, 64, 4).unwrap();
        mpi.barrier();
        mpi.bcast(0, buf, 64);
        let r = fab.alloc(ep, 64);
        mpi.alltoall(buf, r, 64);
        assert!(fab.verify_pattern(ep, r, 64, 4).unwrap());
        assert_eq!(mpi.allreduce_max_f64(3.25), 3.25);
    });
}

#[test]
fn subset_bcast_binomial_and_ring() {
    // Row-scoped broadcasts (as HPL uses): two disjoint rows broadcast
    // concurrently without cross-talk.
    run_world(2, 2, |mpi| {
        let me = mpi.rank();
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(me);
        let row: Vec<usize> = if me < 2 { vec![0, 1] } else { vec![2, 3] };
        let row_id = (me / 2) as u64;
        let buf = fab.alloc(ep, 8192);
        if me % 2 == 0 {
            fab.fill_pattern(ep, buf, 8192, 700 + row_id).unwrap();
        }
        let r = mpi.ibcast_among(&row, 0, buf, 8192);
        mpi.wait(r);
        assert!(fab.verify_pattern(ep, buf, 8192, 700 + row_id).unwrap());
        // Ring variant, rooted at position 1 this time.
        let buf2 = fab.alloc(ep, 4096);
        if me % 2 == 1 {
            fab.fill_pattern(ep, buf2, 4096, 800 + row_id).unwrap();
        }
        let r = mpi.iring_bcast_among(&row, 1, buf2, 4096);
        mpi.wait(r);
        assert!(fab.verify_pattern(ep, buf2, 4096, 800 + row_id).unwrap());
    });
}

#[test]
fn subset_bcast_single_member_is_noop() {
    run_world(2, 1, |mpi| {
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(mpi.rank());
        let buf = fab.alloc(ep, 64);
        fab.fill_pattern(ep, buf, 64, mpi.rank() as u64).unwrap();
        let members = [mpi.rank()];
        let r = mpi.ibcast_among(&members, 0, buf, 64);
        mpi.wait(r);
        let r = mpi.iring_bcast_among(&members, 0, buf, 64);
        mpi.wait(r);
        assert!(fab.verify_pattern(ep, buf, 64, mpi.rank() as u64).unwrap());
    });
}

#[test]
fn uneven_subset_usage_does_not_desync_world_collectives() {
    // Regression: with a single global collective-sequence counter, ranks
    // that ran different numbers of sub-communicator broadcasts would
    // disagree on the next world tag and deadlock. Sequences are now
    // per-communicator.
    run_world(2, 2, |mpi| {
        let me = mpi.rank();
        let fab = mpi.cluster().fabric().clone();
        let ep = mpi.cluster().host_ep(me);
        let buf = fab.alloc(ep, 1024);
        // Row 0 performs THREE subset broadcasts; row 1 performs ONE.
        let row: Vec<usize> = if me < 2 { vec![0, 1] } else { vec![2, 3] };
        let rounds = if me < 2 { 3 } else { 1 };
        for r in 0..rounds {
            if me % 2 == 0 {
                fab.fill_pattern(ep, buf, 1024, 50 + r).unwrap();
            }
            let req = mpi.ibcast_among(&row, 0, buf, 1024);
            mpi.wait(req);
        }
        // A world collective must still match across all ranks.
        if me == 0 {
            fab.fill_pattern(ep, buf, 1024, 999).unwrap();
        }
        mpi.bcast(0, buf, 1024);
        assert!(fab.verify_pattern(ep, buf, 1024, 999).unwrap());
        mpi.barrier();
    });
}
