//! # minimpi — a miniature MPI over the simulated RDMA fabric
//!
//! Implements the slice of MPI the paper's evaluation needs, with the
//! *semantics that motivate the paper*:
//!
//! * Non-blocking point-to-point (`isend`/`irecv`/`test`/`wait`) with an
//!   eager protocol for small messages and a rendezvous protocol
//!   (RTS → CTS → RDMA write → FIN) for large ones.
//! * A host-driven progress engine: protocol steps only advance while the
//!   process is inside an MPI call. A rank busy in `compute()` cannot
//!   answer an RTS or fire the next stage of a dependent collective —
//!   paper Fig. 1 / Listing 1.
//! * Blocking and non-blocking collectives implemented as staged p2p
//!   schedules (binomial/ring broadcast, scatter-destination all-to-all,
//!   ring all-gather, dissemination barrier), plus scalar all-reduces for
//!   benchmark bookkeeping.
//! * A classic registration cache for rendezvous buffers.
//!
//! The "IntelMPI" baseline in the `baselines` crate is this library used
//! directly; the offload framework in the `offload` crate replaces its
//! transport with DPU proxies.

#![warn(missing_docs)]

mod collectives;
mod config;
mod engine;

pub use config::MpiConfig;
pub use engine::{Mpi, Req, ANY_SOURCE, ANY_TAG};
