//! The MPI protocol engine: requests, matching, eager and rendezvous paths.
//!
//! The engine only makes progress when its owner process calls into it
//! (`progress`, `test`, `wait`, or any posting call) — exactly the
//! host-progress semantics of a production MPI without an async progress
//! thread. This is what the paper's motivation (Fig. 1, Listing 1) hinges
//! on: a rendezvous or a dependent collective step stalls while the
//! application computes.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};

use rdma::{Channel, ClusterCtx, EpId, Inbox, MrKey, NetMsg, VAddr};
use simnet::{Pid, ProcessCtx};

use crate::config::MpiConfig;

/// Matches any source rank.
pub const ANY_SOURCE: usize = usize::MAX;
/// Matches any tag.
pub const ANY_TAG: u64 = u64::MAX;

/// Work-request id namespace for MPI CQEs (top byte distinguishes engines
/// sharing one process mailbox).
pub(crate) const WRID_MPI: u64 = 0x0100_0000_0000_0000;

/// A request handle returned by non-blocking operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Req(pub(crate) usize);

/// Wire messages of the mini-MPI protocol (bodies of [`NetMsg::Packet`] /
/// [`NetMsg::Notify`]).
pub(crate) enum MpiMsg {
    /// Small message: payload carried inline; completes the send locally.
    Eager {
        src_rank: usize,
        tag: u64,
        len: u64,
        data: Vec<u8>,
    },
    /// Rendezvous request-to-send.
    Rts {
        src_rank: usize,
        tag: u64,
        len: u64,
        send_req: usize,
    },
    /// Rendezvous clear-to-send: receiver granted the buffer.
    Cts {
        recv_rank: usize,
        recv_pid: Pid,
        recv_addr: VAddr,
        rkey: MrKey,
        send_req: usize,
        recv_req: usize,
    },
    /// Rendezvous finished marker delivered with the RDMA write.
    Fin { recv_req: usize },
}

struct Posted {
    req: usize,
    addr: VAddr,
    len: u64,
    src: usize,
    tag: u64,
    seq: u64,
}

enum Unexpected {
    Eager {
        len: u64,
        data: Vec<u8>,
        seq: u64,
    },
    Rts {
        src_rank: usize,
        len: u64,
        send_req: usize,
        seq: u64,
    },
}

impl Unexpected {
    fn seq(&self) -> u64 {
        match self {
            Unexpected::Eager { seq, .. } | Unexpected::Rts { seq, .. } => *seq,
        }
    }
}

/// A send awaiting CTS.
struct PendingSend {
    addr: VAddr,
    len: u64,
    dst: usize,
}

/// One stage op of a non-blocking collective schedule.
#[derive(Clone, Debug)]
pub(crate) enum NbcOp {
    /// Post an isend.
    Send {
        addr: VAddr,
        len: u64,
        dst: usize,
        tag: u64,
    },
    /// Post an irecv.
    Recv {
        addr: VAddr,
        len: u64,
        src: usize,
        tag: u64,
    },
    /// Local copy between two buffers of this rank (e.g. the self block of
    /// an alltoall).
    Copy { from: VAddr, to: VAddr, len: u64 },
}

struct NbcSlot {
    stages: Vec<Vec<NbcOp>>,
    cur: usize,
    pending: Vec<Req>,
    req: usize,
    active: bool,
}

pub(crate) struct Engine {
    reqs: Vec<bool>, // done flags
    posted_exact: BTreeMap<(usize, u64), VecDeque<Posted>>,
    posted_wild: VecDeque<Posted>,
    unexpected: BTreeMap<(usize, u64), VecDeque<Unexpected>>,
    pending_sends: BTreeMap<usize, PendingSend>,
    regcache: BTreeMap<(u64, u64), MrKey>,
    nbcs: Vec<NbcSlot>,
    next_seq: u64,
    /// Per-communicator collective sequence numbers, keyed by a hash of
    /// the member set. A global counter would desynchronize ranks that
    /// participate in different numbers of sub-communicator collectives
    /// (e.g. HPL row broadcasts) before a world collective.
    pub(crate) coll_seq: BTreeMap<u64, u64>,
}

impl Engine {
    fn new() -> Self {
        Engine {
            reqs: Vec::new(),
            posted_exact: BTreeMap::new(),
            posted_wild: VecDeque::new(),
            unexpected: BTreeMap::new(),
            pending_sends: BTreeMap::new(),
            regcache: BTreeMap::new(),
            nbcs: Vec::new(),
            next_seq: 0,
            coll_seq: BTreeMap::new(),
        }
    }

    fn new_req(&mut self) -> usize {
        self.reqs.push(false);
        self.reqs.len() - 1
    }

    /// Remove and return the earliest posted recv matching `(src, tag)`.
    fn match_posted(&mut self, src: usize, tag: u64) -> Option<Posted> {
        let exact_seq = self
            .posted_exact
            .get(&(src, tag))
            .and_then(|q| q.front())
            .map(|p| p.seq);
        let wild_pos = self.posted_wild.iter().position(|p| {
            (p.src == ANY_SOURCE || p.src == src) && (p.tag == ANY_TAG || p.tag == tag)
        });
        let wild_seq = wild_pos.map(|i| self.posted_wild[i].seq);
        match (exact_seq, wild_seq) {
            (None, None) => None,
            (Some(_), None) => self.posted_exact.get_mut(&(src, tag)).unwrap().pop_front(),
            (None, Some(_)) => self.posted_wild.remove(wild_pos.unwrap()),
            (Some(e), Some(w)) => {
                if e <= w {
                    self.posted_exact.get_mut(&(src, tag)).unwrap().pop_front()
                } else {
                    self.posted_wild.remove(wild_pos.unwrap())
                }
            }
        }
    }

    /// Remove and return the earliest unexpected message matching the
    /// receive `(src, tag)` (which may be wildcards).
    fn match_unexpected(&mut self, src: usize, tag: u64) -> Option<Unexpected> {
        if src != ANY_SOURCE && tag != ANY_TAG {
            return self
                .unexpected
                .get_mut(&(src, tag))
                .and_then(|q| q.pop_front());
        }
        // Wildcard: take the globally earliest matching arrival.
        let mut best: Option<((usize, u64), u64)> = None;
        for (key, q) in &self.unexpected {
            if (src == ANY_SOURCE || key.0 == src) && (tag == ANY_TAG || key.1 == tag) {
                if let Some(front) = q.front() {
                    if best.is_none_or(|(_, s)| front.seq() < s) {
                        best = Some((*key, front.seq()));
                    }
                }
            }
        }
        best.and_then(|(key, _)| self.unexpected.get_mut(&key).unwrap().pop_front())
    }
}

/// One rank's MPI library. Create inside the rank's process closure and use
/// like MPI: `isend`/`irecv`/`test`/`wait`, plus the collectives defined in
/// the collectives module (barrier, bcast, alltoall, allgather, scalar
/// all-reduce).
pub struct Mpi {
    pub(crate) ctx: ProcessCtx,
    pub(crate) cluster: ClusterCtx,
    pub(crate) rank: usize,
    pub(crate) ep: EpId,
    pub(crate) cfg: MpiConfig,
    pub(crate) chan: Channel,
    pub(crate) st: RefCell<Engine>,
    /// Reentrancy guard: posting ops from inside `advance_nbcs` re-enters
    /// `progress`, which must not recurse into `advance_nbcs` while a stage
    /// is half-posted.
    in_advance: std::cell::Cell<bool>,
}

impl Mpi {
    /// Attach an MPI engine for `rank` to an existing per-process [`Inbox`]
    /// (use this when the process also runs other engines, e.g. offload).
    pub fn attach(
        rank: usize,
        ctx: ProcessCtx,
        cluster: ClusterCtx,
        inbox: &Inbox,
        cfg: MpiConfig,
    ) -> Mpi {
        let chan = inbox.channel(|m| match m {
            NetMsg::Packet(p) => p.body.is::<MpiMsg>(),
            NetMsg::Notify(p) => p.is::<MpiMsg>(),
            NetMsg::Cqe(c) => c.wrid & 0xFF00_0000_0000_0000 == WRID_MPI,
        });
        let ep = cluster.host_ep(rank);
        Mpi {
            ctx,
            cluster,
            rank,
            ep,
            cfg,
            chan,
            st: RefCell::new(Engine::new()),
            in_advance: std::cell::Cell::new(false),
        }
    }

    /// Create an MPI engine with its own private inbox (processes that only
    /// run MPI).
    pub fn new(rank: usize, ctx: ProcessCtx, cluster: ClusterCtx, cfg: MpiConfig) -> Mpi {
        let inbox = Inbox::new();
        Mpi::attach(rank, ctx, cluster, &inbox, cfg)
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.cluster.world_size()
    }

    /// The process context (for `compute`, `now`, tracing).
    pub fn ctx(&self) -> &ProcessCtx {
        &self.ctx
    }

    /// The cluster roster.
    pub fn cluster(&self) -> &ClusterCtx {
        &self.cluster
    }

    /// Model application computation (no MPI progress happens meanwhile).
    pub fn compute(&self, d: simnet::SimDelta) {
        self.ctx.compute(d);
    }

    // ---- point-to-point ----

    /// Non-blocking send of `[addr, addr+len)` to `dst` with `tag`.
    pub fn isend(&self, addr: VAddr, len: u64, dst: usize, tag: u64) -> Req {
        assert!(dst < self.size(), "isend: bad destination rank {dst}");
        self.progress();
        let req = self.st.borrow_mut().new_req();
        let fab = self.cluster.fabric();
        if len <= self.cfg.eager_threshold {
            // Eager payloads always carry real bytes, even in timing-only
            // runs: they are small, and scalar reductions ride on them.
            let data = fab
                .read_bytes(self.ep, addr, len)
                .expect("eager send buffer readable");
            fab.send_packet(
                &self.ctx,
                self.ep,
                self.cluster.host_ep(dst),
                len + self.cfg.ctrl_bytes,
                Box::new(MpiMsg::Eager {
                    src_rank: self.rank,
                    tag,
                    len,
                    data,
                }),
            )
            .expect("eager send");
            // Buffered semantics: the send buffer is reusable immediately.
            self.st.borrow_mut().reqs[req] = true;
            self.ctx.stat_incr("mpi.send.eager", 1);
        } else {
            self.st
                .borrow_mut()
                .pending_sends
                .insert(req, PendingSend { addr, len, dst });
            fab.send_packet(
                &self.ctx,
                self.ep,
                self.cluster.host_ep(dst),
                self.cfg.ctrl_bytes,
                Box::new(MpiMsg::Rts {
                    src_rank: self.rank,
                    tag,
                    len,
                    send_req: req,
                }),
            )
            .expect("rts send");
            self.ctx.stat_incr("mpi.send.rndv", 1);
        }
        Req(req)
    }

    /// Non-blocking receive into `[addr, addr+len)` from `src` (or
    /// [`ANY_SOURCE`]) with `tag` (or [`ANY_TAG`]).
    pub fn irecv(&self, addr: VAddr, len: u64, src: usize, tag: u64) -> Req {
        self.progress();
        let req = self.st.borrow_mut().new_req();
        let matched = self.st.borrow_mut().match_unexpected(src, tag);
        match matched {
            Some(Unexpected::Eager {
                len: mlen, data, ..
            }) => {
                assert!(mlen <= len, "eager message longer than receive buffer");
                self.deliver_eager(addr, &data, mlen);
                self.st.borrow_mut().reqs[req] = true;
            }
            Some(Unexpected::Rts {
                src_rank,
                len: mlen,
                send_req,
                ..
            }) => {
                assert!(mlen <= len, "rendezvous message longer than receive buffer");
                self.reply_cts(req, addr, mlen, src_rank, send_req);
            }
            None => {
                let mut st = self.st.borrow_mut();
                let seq = st.next_seq;
                st.next_seq += 1;
                let posted = Posted {
                    req,
                    addr,
                    len,
                    src,
                    tag,
                    seq,
                };
                if src == ANY_SOURCE || tag == ANY_TAG {
                    st.posted_wild.push_back(posted);
                } else {
                    st.posted_exact
                        .entry((src, tag))
                        .or_default()
                        .push_back(posted);
                }
            }
        }
        Req(req)
    }

    /// Has `req` completed? Drives progress (like `MPI_Test`).
    pub fn test(&self, req: Req) -> bool {
        self.progress();
        self.st.borrow().reqs[req.0]
    }

    /// Have all of `reqs` completed? Drives progress.
    pub fn test_all(&self, reqs: &[Req]) -> bool {
        self.progress();
        let st = self.st.borrow();
        reqs.iter().all(|r| st.reqs[r.0])
    }

    /// Block until `req` completes (like `MPI_Wait`).
    pub fn wait(&self, req: Req) {
        self.progress();
        while !self.st.borrow().reqs[req.0] {
            let msg = self.chan.next_blocking(&self.ctx);
            self.handle(msg);
            self.progress();
        }
    }

    /// Block until all of `reqs` complete.
    pub fn wait_all(&self, reqs: &[Req]) {
        for &r in reqs {
            self.wait(r);
        }
    }

    /// Blocking standard send.
    pub fn send(&self, addr: VAddr, len: u64, dst: usize, tag: u64) {
        let r = self.isend(addr, len, dst, tag);
        self.wait(r);
    }

    /// Blocking receive.
    pub fn recv(&self, addr: VAddr, len: u64, src: usize, tag: u64) {
        let r = self.irecv(addr, len, src, tag);
        self.wait(r);
    }

    /// Drain and handle every pending incoming message, then advance any
    /// active non-blocking collective schedules.
    pub fn progress(&self) {
        while let Some(msg) = self.chan.try_next(&self.ctx) {
            self.handle(msg);
        }
        self.advance_nbcs();
    }

    /// Compute for `total`, calling `test` on `req` every `slice` — the
    /// Listing-1 pattern (`do_compute(); MPI_Test(...)`). Returns once the
    /// compute budget is spent; query `test`/`wait` afterwards for the
    /// request's completion state.
    pub fn compute_with_test(&self, total: simnet::SimDelta, slice: simnet::SimDelta, req: Req) {
        let mut remaining = total;
        while remaining > simnet::SimDelta::ZERO {
            let step = remaining.min(slice);
            self.ctx.compute(step);
            remaining = remaining.saturating_sub(step);
            let _ = self.test(req);
        }
    }

    // ---- internals ----

    fn deliver_eager(&self, addr: VAddr, data: &[u8], len: u64) {
        debug_assert_eq!(data.len() as u64, len);
        self.cluster
            .fabric()
            .write_bytes(self.ep, addr, data)
            .expect("recv buffer writable");
    }

    /// Look up (or create) a registration for this rank's buffer — the
    /// classic MPI registration cache.
    pub(crate) fn cached_reg(&self, addr: VAddr, len: u64) -> MrKey {
        let hit = self.st.borrow().regcache.get(&(addr.0, len)).copied();
        if let Some(k) = hit {
            self.ctx.stat_incr("mpi.regcache.hit", 1);
            return k;
        }
        self.ctx.stat_incr("mpi.regcache.miss", 1);
        let key = self
            .cluster
            .fabric()
            .reg_mr(&self.ctx, self.ep, addr, len)
            .expect("registration of a valid buffer");
        self.st.borrow_mut().regcache.insert((addr.0, len), key);
        key
    }

    fn reply_cts(&self, recv_req: usize, addr: VAddr, len: u64, src_rank: usize, send_req: usize) {
        self.ctx.trace(format!("mpi.reply_cts.to{src_rank}"));
        let rkey = self.cached_reg(addr, len);
        self.cluster
            .fabric()
            .send_packet(
                &self.ctx,
                self.ep,
                self.cluster.host_ep(src_rank),
                self.cfg.ctrl_bytes,
                Box::new(MpiMsg::Cts {
                    recv_rank: self.rank,
                    recv_pid: self.ctx.pid(),
                    recv_addr: addr,
                    rkey,
                    send_req,
                    recv_req,
                }),
            )
            .expect("cts send");
    }

    fn handle(&self, msg: NetMsg) {
        match msg {
            NetMsg::Packet(p) => {
                let body = *p.body.downcast::<MpiMsg>().expect("channel predicate");
                match body {
                    MpiMsg::Eager {
                        src_rank,
                        tag,
                        len,
                        data,
                    } => {
                        let matched = self.st.borrow_mut().match_posted(src_rank, tag);
                        match matched {
                            Some(posted) => {
                                assert!(len <= posted.len, "eager overflow");
                                self.deliver_eager(posted.addr, &data, len);
                                self.st.borrow_mut().reqs[posted.req] = true;
                            }
                            None => {
                                let mut st = self.st.borrow_mut();
                                let seq = st.next_seq;
                                st.next_seq += 1;
                                st.unexpected
                                    .entry((src_rank, tag))
                                    .or_default()
                                    .push_back(Unexpected::Eager { len, data, seq });
                            }
                        }
                    }
                    MpiMsg::Rts {
                        src_rank,
                        tag,
                        len,
                        send_req,
                    } => {
                        self.ctx.trace(format!("mpi.rts.from{src_rank}.tag{tag}"));
                        let matched = self.st.borrow_mut().match_posted(src_rank, tag);
                        match matched {
                            Some(posted) => {
                                assert!(len <= posted.len, "rendezvous overflow");
                                self.reply_cts(posted.req, posted.addr, len, src_rank, send_req);
                            }
                            None => {
                                let mut st = self.st.borrow_mut();
                                let seq = st.next_seq;
                                st.next_seq += 1;
                                st.unexpected.entry((src_rank, tag)).or_default().push_back(
                                    Unexpected::Rts {
                                        src_rank,
                                        len,
                                        send_req,
                                        seq,
                                    },
                                );
                            }
                        }
                    }
                    MpiMsg::Cts {
                        recv_rank,
                        recv_pid,
                        recv_addr,
                        rkey,
                        send_req,
                        recv_req,
                    } => {
                        self.ctx.trace(format!("mpi.cts.from{recv_rank}"));
                        let ps = self
                            .st
                            .borrow_mut()
                            .pending_sends
                            .remove(&send_req)
                            .expect("CTS for unknown send");
                        debug_assert_eq!(ps.dst, recv_rank);
                        let lkey = self.cached_reg(ps.addr, ps.len);
                        self.cluster
                            .fabric()
                            .rdma_write(
                                &self.ctx,
                                self.ep,
                                (self.ep, ps.addr, lkey),
                                (self.cluster.host_ep(recv_rank), recv_addr, rkey),
                                ps.len,
                                Some(WRID_MPI | send_req as u64),
                                Some((recv_pid, Box::new(MpiMsg::Fin { recv_req }))),
                            )
                            .expect("rendezvous data write");
                    }
                    MpiMsg::Fin { .. } => unreachable!("Fin arrives as Notify"),
                }
            }
            NetMsg::Notify(body) => {
                let body = *body.downcast::<MpiMsg>().expect("channel predicate");
                match body {
                    MpiMsg::Fin { recv_req } => {
                        self.ctx.trace(format!("mpi.fin.req{recv_req}"));
                        self.st.borrow_mut().reqs[recv_req] = true;
                    }
                    _ => unreachable!("only Fin rides Notify"),
                }
            }
            NetMsg::Cqe(c) => {
                let req = (c.wrid & !WRID_MPI) as usize;
                self.st.borrow_mut().reqs[req] = true;
            }
        }
    }

    // ---- non-blocking collective machinery ----

    /// Register a staged schedule; returns its request handle. Stages run in
    /// order; each stage's ops are posted when all previous stage requests
    /// have completed.
    pub(crate) fn start_nbc(&self, stages: Vec<Vec<NbcOp>>) -> Req {
        let req = self.st.borrow_mut().new_req();
        self.st.borrow_mut().nbcs.push(NbcSlot {
            stages,
            cur: 0,
            pending: Vec::new(),
            req,
            active: true,
        });
        self.advance_nbcs();
        Req(req)
    }

    fn advance_nbcs(&self) {
        if self.in_advance.get() {
            return;
        }
        self.in_advance.set(true);
        let _reset = ResetGuard(&self.in_advance);
        loop {
            let mut advanced = false;
            let n = self.st.borrow().nbcs.len();
            for i in 0..n {
                // Check whether this NBC can move.
                let ready = {
                    let st = self.st.borrow();
                    let slot = &st.nbcs[i];
                    slot.active && slot.pending.iter().all(|r| st.reqs[r.0])
                };
                if !ready {
                    continue;
                }
                let next_stage = {
                    let mut st = self.st.borrow_mut();
                    let slot = &mut st.nbcs[i];
                    slot.pending.clear();
                    if slot.cur >= slot.stages.len() {
                        slot.active = false;
                        let req = slot.req;
                        st.reqs[req] = true;
                        advanced = true;
                        None
                    } else {
                        let stage = slot.stages[slot.cur].clone();
                        slot.cur += 1;
                        Some((i, stage))
                    }
                };
                if let Some((idx, stage)) = next_stage {
                    advanced = true;
                    let mut new_reqs = Vec::new();
                    for op in stage {
                        match op {
                            NbcOp::Send {
                                addr,
                                len,
                                dst,
                                tag,
                            } => {
                                new_reqs.push(self.isend(addr, len, dst, tag));
                            }
                            NbcOp::Recv {
                                addr,
                                len,
                                src,
                                tag,
                            } => {
                                new_reqs.push(self.irecv(addr, len, src, tag));
                            }
                            NbcOp::Copy { from, to, len } => {
                                let fab = self.cluster.fabric();
                                if fab.moves_bytes() {
                                    let data =
                                        fab.read_bytes(self.ep, from, len).expect("copy source");
                                    fab.write_bytes(self.ep, to, &data).expect("copy dest");
                                }
                            }
                        }
                    }
                    self.st.borrow_mut().nbcs[idx].pending = new_reqs;
                }
            }
            if !advanced {
                break;
            }
        }
    }

    /// Next collective sequence number for the communicator identified by
    /// `members_hash` (tags of internal collectives are namespaced per
    /// member set so disjoint sub-communicators never cross-talk and
    /// uneven subset usage cannot desynchronize world collectives).
    pub(crate) fn next_coll_seq(&self, members_hash: u64) -> u64 {
        let mut st = self.st.borrow_mut();
        let c = st.coll_seq.entry(members_hash).or_insert(0);
        *c += 1;
        *c
    }

    /// Stable hash of a member list (communicator identity for tags).
    pub(crate) fn members_hash(members: &[usize]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &m in members {
            h ^= m as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Hash representing the world communicator.
    pub(crate) fn world_hash(&self) -> u64 {
        // All ranks: identified by the world size alone.
        Self::members_hash(&[usize::MAX, self.size()])
    }
}

/// Clears the `in_advance` flag even if a stage op panics.
struct ResetGuard<'a>(&'a std::cell::Cell<bool>);

impl Drop for ResetGuard<'_> {
    fn drop(&mut self) {
        self.0.set(false);
    }
}
