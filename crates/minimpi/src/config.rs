//! Tunables of the mini-MPI library.

/// Configuration knobs for one MPI instance. All ranks should use the same
/// values (as with a real MPI launch).
#[derive(Clone, Debug)]
pub struct MpiConfig {
    /// Messages up to this size (bytes) use the eager protocol: the payload
    /// rides inside the control packet and the send completes locally.
    /// Larger messages use rendezvous (RTS → CTS → RDMA write → FIN), which
    /// requires the *receiver's CPU* to be inside an MPI call to reply CTS —
    /// the host-progress limitation the paper's Fig. 1 illustrates.
    pub eager_threshold: u64,
    /// Modelled wire size of a control packet (RTS/CTS and eager header).
    pub ctrl_bytes: u64,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            eager_threshold: 16 * 1024,
            ctrl_bytes: 64,
        }
    }
}

impl MpiConfig {
    /// Set the eager/rendezvous switch-over point.
    pub fn with_eager_threshold(mut self, bytes: u64) -> Self {
        self.eager_threshold = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = MpiConfig::default();
        assert_eq!(c.eager_threshold, 16 * 1024);
        assert!(c.ctrl_bytes > 0);
    }

    #[test]
    fn builder_overrides() {
        let c = MpiConfig::default().with_eager_threshold(1024);
        assert_eq!(c.eager_threshold, 1024);
    }
}
