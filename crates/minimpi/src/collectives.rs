//! Blocking and non-blocking collectives over the p2p engine.
//!
//! The non-blocking collectives are *schedules* progressed by the engine —
//! exactly how production host-based MPIs implement NBC. They therefore
//! inherit the host-progress limitation: a dependent stage (e.g. the
//! forward step of a tree broadcast) only fires while the application is
//! inside an MPI call.

use rdma::VAddr;

use crate::engine::{Mpi, NbcOp, Req};

/// Internal tag namespace for collectives: bit 63 set, then a
/// communicator discriminator (hash of the member set), the collective
/// sequence number, and the step index.
fn coll_tag(comm: u64, seq: u64, step: u64) -> u64 {
    (1 << 63) | ((comm & 0x7FFF) << 48) | ((seq & 0xFFFF_FFFF) << 16) | (step & 0xFFFF)
}

impl Mpi {
    /// Blocking barrier (dissemination algorithm, zero-byte eager messages).
    pub fn barrier(&self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let me = self.rank();
        let comm = self.world_hash();
        let seq = self.next_coll_seq(comm);
        let scratch = self.scratch0();
        let mut step = 0u64;
        let mut dist = 1usize;
        while dist < p {
            let to = (me + dist) % p;
            let from = (me + p - dist) % p;
            let tag = coll_tag(comm, seq, step);
            let s = self.isend(scratch, 0, to, tag);
            let r = self.irecv(scratch, 0, from, tag);
            self.wait(s);
            self.wait(r);
            dist <<= 1;
            step += 1;
        }
    }

    /// Blocking binomial-tree broadcast of `[addr, addr+len)` from `root`.
    pub fn bcast(&self, root: usize, addr: VAddr, len: u64) {
        let r = self.ibcast(root, addr, len);
        self.wait(r);
    }

    /// Non-blocking binomial broadcast; progressed by `test`/`wait`.
    pub fn ibcast(&self, root: usize, addr: VAddr, len: u64) -> Req {
        let members: Vec<usize> = (0..self.size()).collect();
        self.ibcast_among(&members, root, addr, len)
    }

    /// Non-blocking binomial broadcast over an arbitrary subset of ranks
    /// (a sub-communicator, e.g. an HPL process row). `root_pos` indexes
    /// into `members`; the caller must appear in `members` and every
    /// member must make the matching call.
    pub fn ibcast_among(&self, members: &[usize], root_pos: usize, addr: VAddr, len: u64) -> Req {
        let p = members.len();
        let me_pos = members
            .iter()
            .position(|&r| r == self.rank())
            .expect("caller must be a member");
        let comm = Self::members_hash(members);
        let seq = self.next_coll_seq(comm);
        let tag = coll_tag(comm, seq, 0);
        let vrank = (me_pos + p - root_pos) % p;
        let real = |v: usize| members[(v + root_pos) % p];
        let mut stages: Vec<Vec<NbcOp>> = Vec::new();
        // Receive phase: find the bit that links us to our parent.
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                stages.push(vec![NbcOp::Recv {
                    addr,
                    len,
                    src: real(vrank - mask),
                    tag,
                }]);
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children under our mask.
        let mut sends = Vec::new();
        let mut m = mask >> 1;
        if vrank == 0 {
            // Root never entered the recv branch; its mask overshot.
            m = p.next_power_of_two() >> 1;
        }
        while m > 0 {
            if vrank + m < p {
                sends.push(NbcOp::Send {
                    addr,
                    len,
                    dst: real(vrank + m),
                    tag,
                });
            }
            m >>= 1;
        }
        if !sends.is_empty() {
            stages.push(sends);
        }
        self.start_nbc(stages)
    }

    /// Blocking ring broadcast (the HPL "1ring" algorithm): root sends to
    /// its right neighbour; every other rank receives from the left, then
    /// forwards right. Dependent steps, so host progress serializes it.
    pub fn ring_bcast(&self, root: usize, addr: VAddr, len: u64) {
        let r = self.iring_bcast(root, addr, len);
        self.wait(r);
    }

    /// Non-blocking ring broadcast schedule (receive stage, then forward
    /// stage) — used to show the CPU-intervention cost of dependent steps.
    pub fn iring_bcast(&self, root: usize, addr: VAddr, len: u64) -> Req {
        let members: Vec<usize> = (0..self.size()).collect();
        self.iring_bcast_among(&members, root, addr, len)
    }

    /// Non-blocking ring broadcast over an arbitrary subset of ranks (see
    /// [`Self::ibcast_among`] for the membership rules).
    pub fn iring_bcast_among(
        &self,
        members: &[usize],
        root_pos: usize,
        addr: VAddr,
        len: u64,
    ) -> Req {
        let p = members.len();
        let me_pos = members
            .iter()
            .position(|&r| r == self.rank())
            .expect("caller must be a member");
        let comm = Self::members_hash(members);
        let seq = self.next_coll_seq(comm);
        let tag = coll_tag(comm, seq, 0);
        let right = members[(me_pos + 1) % p];
        let left = members[(me_pos + p - 1) % p];
        let root = members[root_pos];
        let me = self.rank();
        let mut stages: Vec<Vec<NbcOp>> = Vec::new();
        if me == root {
            if p > 1 {
                stages.push(vec![NbcOp::Send {
                    addr,
                    len,
                    dst: right,
                    tag,
                }]);
            }
        } else {
            stages.push(vec![NbcOp::Recv {
                addr,
                len,
                src: left,
                tag,
            }]);
            if right != root {
                stages.push(vec![NbcOp::Send {
                    addr,
                    len,
                    dst: right,
                    tag,
                }]);
            }
        }
        self.start_nbc(stages)
    }

    /// Blocking personalized all-to-all. `sendbuf`/`recvbuf` hold
    /// `size()` contiguous blocks of `block_len` bytes.
    pub fn alltoall(&self, sendbuf: VAddr, recvbuf: VAddr, block_len: u64) {
        let r = self.ialltoall(sendbuf, recvbuf, block_len);
        self.wait(r);
    }

    /// Non-blocking all-to-all, scatter-destination algorithm: every block
    /// is posted up-front (one stage), so progress depends only on how
    /// often the host re-enters MPI.
    pub fn ialltoall(&self, sendbuf: VAddr, recvbuf: VAddr, block_len: u64) -> Req {
        let p = self.size();
        let me = self.rank();
        let comm = self.world_hash();
        let seq = self.next_coll_seq(comm);
        let tag = coll_tag(comm, seq, 0);
        let mut ops = Vec::with_capacity(2 * p - 1);
        ops.push(NbcOp::Copy {
            from: sendbuf.offset(me as u64 * block_len),
            to: recvbuf.offset(me as u64 * block_len),
            len: block_len,
        });
        for k in 1..p {
            let dst = (me + k) % p;
            let src = (me + p - k) % p;
            ops.push(NbcOp::Send {
                addr: sendbuf.offset(dst as u64 * block_len),
                len: block_len,
                dst,
                tag,
            });
            ops.push(NbcOp::Recv {
                addr: recvbuf.offset(src as u64 * block_len),
                len: block_len,
                src,
                tag,
            });
        }
        self.start_nbc(vec![ops])
    }

    /// Blocking ring all-gather: `buf` holds `size()` blocks of
    /// `block_len`; each rank contributes the block at its own index.
    pub fn allgather(&self, buf: VAddr, block_len: u64) {
        let r = self.iallgather(buf, block_len);
        self.wait(r);
    }

    /// Non-blocking ring all-gather: `size()-1` dependent stages.
    pub fn iallgather(&self, buf: VAddr, block_len: u64) -> Req {
        let p = self.size();
        let me = self.rank();
        let comm = self.world_hash();
        let seq = self.next_coll_seq(comm);
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let mut stages = Vec::with_capacity(p - 1);
        for k in 0..p.saturating_sub(1) {
            let send_block = (me + p - k) % p;
            let recv_block = (me + p - k - 1) % p;
            let tag = coll_tag(comm, seq, k as u64);
            stages.push(vec![
                NbcOp::Send {
                    addr: buf.offset(send_block as u64 * block_len),
                    len: block_len,
                    dst: right,
                    tag,
                },
                NbcOp::Recv {
                    addr: buf.offset(recv_block as u64 * block_len),
                    len: block_len,
                    src: left,
                    tag,
                },
            ]);
        }
        self.start_nbc(stages)
    }

    /// All-reduce a single `f64` with max (binomial reduce + broadcast).
    /// Used by benchmark harnesses to agree on per-iteration times.
    pub fn allreduce_max_f64(&self, value: f64) -> f64 {
        self.allreduce_f64(value, f64::max)
    }

    /// All-reduce a single `f64` with sum.
    pub fn allreduce_sum_f64(&self, value: f64) -> f64 {
        self.allreduce_f64(value, |a, b| a + b)
    }

    fn allreduce_f64(&self, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        let p = self.size();
        if p == 1 {
            return value;
        }
        let me = self.rank();
        let comm = self.world_hash();
        let seq = self.next_coll_seq(comm);
        let tag = coll_tag(comm, seq, 0);
        let fab = self.cluster().fabric().clone();
        let ep = self.cluster().host_ep(me);
        let buf = fab.alloc(ep, 8);
        let tmp = fab.alloc(ep, 8);
        fab.write_bytes(ep, buf, &value.to_le_bytes())
            .expect("scratch");
        let mut acc = value;
        // Reduce to rank 0.
        let mut mask = 1usize;
        while mask < p {
            if me & mask != 0 {
                fab.write_bytes(ep, buf, &acc.to_le_bytes())
                    .expect("scratch");
                self.send(buf, 8, me - mask, tag);
                break;
            }
            let peer = me | mask;
            if peer < p {
                self.recv(tmp, 8, peer, tag);
                let bytes = fab.read_bytes(ep, tmp, 8).expect("scratch");
                acc = op(acc, f64::from_le_bytes(bytes.try_into().expect("8 bytes")));
            }
            mask <<= 1;
        }
        // Broadcast the result.
        fab.write_bytes(ep, buf, &acc.to_le_bytes())
            .expect("scratch");
        self.bcast(0, buf, 8);
        let bytes = fab.read_bytes(ep, buf, 8).expect("scratch");
        f64::from_le_bytes(bytes.try_into().expect("8 bytes"))
    }

    /// Lazily allocated zero-length scratch buffer for zero-byte messages.
    fn scratch0(&self) -> VAddr {
        use std::cell::Cell;
        thread_local! {
            static SCRATCH: Cell<Option<(usize, VAddr)>> = const { Cell::new(None) };
        }
        SCRATCH.with(|s| {
            if let Some((rank, addr)) = s.get() {
                if rank == self.rank() {
                    return addr;
                }
            }
            let addr = self
                .cluster()
                .fabric()
                .alloc(self.cluster().host_ep(self.rank()), 0);
            s.set(Some((self.rank(), addr)));
            addr
        })
    }
}
