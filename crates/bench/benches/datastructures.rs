//! Criterion micro-benchmarks of the hot data structures: the
//! registration caches of paper §VII-B, the simulation event queue, the
//! PRNG and the simulated memory.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_reg_cache(c: &mut Criterion) {
    use offload::RankAddrCache;
    let mut g = c.benchmark_group("reg_cache");
    // Hit path: the steady state the paper's caches are designed for.
    g.bench_function("hit", |b| {
        let mut cache: RankAddrCache<u64> = RankAddrCache::new(64);
        for r in 0..64usize {
            for i in 0..32u64 {
                cache.insert(r, 0x1000 + i * 0x10000, 65536, i);
            }
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 32;
            black_box(cache.get(17, 0x1000 + k * 0x10000, 65536).copied())
        });
    });
    g.bench_function("miss", |b| {
        let mut cache: RankAddrCache<u64> = RankAddrCache::new(64);
        b.iter(|| black_box(cache.get(3, 0xdead_0000, 4096).copied()));
    });
    g.bench_function("insert_evict", |b| {
        let mut cache: RankAddrCache<u64> = RankAddrCache::new(4);
        b.iter(|| {
            cache.insert(1, 0x2000, 128, 9);
            black_box(cache.evict(1, 0x2000, 128))
        });
    });
    g.finish();
}

fn bench_sim_engine(c: &mut Criterion) {
    use simnet::{SimDelta, Simulation};
    let mut g = c.benchmark_group("simnet");
    // Full tiny simulation: spawn, message, teardown. This bounds the
    // fixed cost of every benchmark harness iteration.
    g.bench_function("two_process_message", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let rx = sim.spawn("rx", |ctx| {
                let _ = ctx.recv();
            });
            sim.spawn("tx", move |ctx| {
                ctx.deliver(rx, SimDelta::from_ns(100), Box::new(1u64));
            });
            black_box(sim.run().unwrap().events)
        });
    });
    g.bench_function("rng_throughput", |b| {
        let mut rng = simnet::SimRng::new(7);
        b.iter(|| black_box(rng.gen_range(1000)));
    });
    g.finish();
}

fn bench_memory(c: &mut Criterion) {
    use rdma::AddressSpace;
    let mut g = c.benchmark_group("address_space");
    g.bench_function("alloc", |b| {
        b.iter_batched(
            AddressSpace::new,
            |mut asp| black_box(asp.alloc(4096)),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("write_read_4k", |b| {
        let mut asp = AddressSpace::new();
        let addr = asp.alloc(4096);
        let data = vec![0xABu8; 4096];
        b.iter(|| {
            asp.write(addr, &data).unwrap();
            black_box(asp.read(addr, 4096).unwrap().len())
        });
    });
    g.bench_function("check_range", |b| {
        let mut asp = AddressSpace::new();
        // Fragmented space: many regions to search.
        let addrs: Vec<_> = (0..256).map(|_| asp.alloc(8192)).collect();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % addrs.len();
            black_box(asp.check_range(addrs[i], 8192).is_ok())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_reg_cache, bench_sim_engine, bench_memory);
criterion_main!(benches);
