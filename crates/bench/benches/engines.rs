//! End-to-end engine benchmarks (Criterion): whole simulated exchanges per
//! iteration, including the ablations DESIGN.md calls out — GVMI vs
//! staging, registration cache on/off, group metadata cache on/off, and
//! proxy fan-out.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use offload::{Offload, OffloadConfig};
use rdma::{ClusterBuilder, ClusterSpec, Inbox};

/// One complete two-rank offloaded exchange; returns simulated µs.
fn offload_exchange(cfg: OffloadConfig, rounds: u32, len: u64) -> f64 {
    let proxy_cfg = cfg.clone();
    let spec = ClusterSpec::new(2, 1).without_byte_movement();
    let report = ClusterBuilder::new(spec, 3)
        .run(
            move |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(rank, ctx, cluster.clone(), &inbox, cfg.clone());
                let fab = cluster.fabric().clone();
                let ep = cluster.host_ep(rank);
                let buf = fab.alloc(ep, len);
                for i in 0..rounds as u64 {
                    if rank == 0 {
                        off.wait(off.send_offload(buf, len, 1, i));
                    } else {
                        off.wait(off.recv_offload(buf, len, 0, i));
                    }
                }
                off.finalize();
            },
            Some(offload::proxy_fn(proxy_cfg)),
        )
        .unwrap();
    report.end_time.as_us_f64()
}

/// One group-alltoall run over a small cluster; returns simulated µs.
fn group_alltoall(cfg: OffloadConfig, calls: u32) -> f64 {
    let proxy_cfg = cfg.clone();
    let spec = ClusterSpec::new(2, 2).without_byte_movement();
    let report = ClusterBuilder::new(spec, 5)
        .run(
            move |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(rank, ctx, cluster.clone(), &inbox, cfg.clone());
                let fab = cluster.fabric().clone();
                let ep = cluster.host_ep(rank);
                let p = cluster.world_size();
                let block = 16 * 1024u64;
                let sendbuf = fab.alloc(ep, block * p as u64);
                let recvbuf = fab.alloc(ep, block * p as u64);
                let g = off.group_start();
                for k in 1..p {
                    let dst = (rank + k) % p;
                    let src = (rank + p - k) % p;
                    off.group_send(
                        g,
                        sendbuf.offset(dst as u64 * block),
                        block,
                        dst,
                        dst as u64,
                    );
                    off.group_recv(
                        g,
                        recvbuf.offset(src as u64 * block),
                        block,
                        src,
                        rank as u64,
                    );
                }
                off.group_end(g);
                for _ in 0..calls {
                    off.group_call(g);
                    off.group_wait(g).expect("group offload failed");
                }
                off.finalize();
            },
            Some(offload::proxy_fn(proxy_cfg)),
        )
        .unwrap();
    report.end_time.as_us_f64()
}

fn bench_mechanisms(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanism");
    g.sample_size(20);
    g.bench_function("gvmi_exchange", |b| {
        b.iter(|| black_box(offload_exchange(OffloadConfig::proposed(), 4, 128 * 1024)))
    });
    g.bench_function("staging_exchange", |b| {
        b.iter(|| black_box(offload_exchange(OffloadConfig::staging(), 4, 128 * 1024)))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(15);
    // Ablation 2: GVMI registration caches. The *simulated* time gap is the
    // paper's amortization claim; the benchmark tracks the wall cost of
    // simulating each variant and prints the virtual-time gap once.
    let with_cache = offload_exchange(OffloadConfig::proposed(), 8, 1 << 20);
    let without = offload_exchange(OffloadConfig::proposed().without_gvmi_cache(), 8, 1 << 20);
    println!(
        "[ablation] 8x1MiB exchanges, virtual time: gvmi-cache on {with_cache:.1}us / off {without:.1}us"
    );
    assert!(without > with_cache);
    g.bench_function("gvmi_cache_on", |b| {
        b.iter(|| black_box(offload_exchange(OffloadConfig::proposed(), 4, 1 << 20)))
    });
    g.bench_function("gvmi_cache_off", |b| {
        b.iter(|| {
            black_box(offload_exchange(
                OffloadConfig::proposed().without_gvmi_cache(),
                4,
                1 << 20,
            ))
        })
    });
    // Ablation 3: group metadata cache.
    let grp_on = group_alltoall(OffloadConfig::proposed(), 6);
    let grp_off = group_alltoall(OffloadConfig::proposed().without_group_cache(), 6);
    println!(
        "[ablation] 6 group alltoalls, virtual time: group-cache on {grp_on:.1}us / off {grp_off:.1}us"
    );
    assert!(grp_off > grp_on);
    g.bench_function("group_cache_on", |b| {
        b.iter(|| black_box(group_alltoall(OffloadConfig::proposed(), 4)))
    });
    g.bench_function("group_cache_off", |b| {
        b.iter(|| {
            black_box(group_alltoall(
                OffloadConfig::proposed().without_group_cache(),
                4,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_mechanisms, bench_ablations);
criterion_main!(benches);
