//! Paper Fig. 12 — 3DStencil overlap percentage of communication and
//! compute, Proposed vs IntelMPI, on 16 nodes.

use bench_harness::{pct, print_table, us, Args};
use workloads::{stencil3d, Runtime};

fn run(args: Args) {
    let nodes = args.nodes.unwrap_or(if args.quick { 2 } else { 16 });
    let ppn = args.pick_ppn(32, 32, 4);
    let iters = args.pick_iters(3, 1);
    let grids: Vec<u64> = if args.quick {
        vec![128, 256]
    } else {
        vec![512, 1024, 2048]
    };
    let mut rows = Vec::new();
    for &n in &grids {
        let intel = stencil3d(nodes, ppn, n, iters, 1, Runtime::Intel, 37);
        let prop = stencil3d(nodes, ppn, n, iters, 1, Runtime::proposed(), 37);
        rows.push(vec![
            format!("{n}^3"),
            pct(intel.overlap_pct()),
            pct(prop.overlap_pct()),
            us(intel.pure_us),
            us(prop.pure_us),
        ]);
    }
    print_table(
        &format!("Fig. 12 — 3DStencil overlap %, {nodes} nodes x {ppn} ppn"),
        &[
            "grid",
            "IntelMPI overlap",
            "Proposed overlap",
            "Intel pure comm",
            "Proposed pure comm",
        ],
        &rows,
    );
    println!("\nPaper shape: Proposed holds roughly constant high overlap (~78%; intra-node\ntransfers are not offloaded), IntelMPI's overlap collapses at the largest grid.");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("fig12_stencil_overlap", || run(args));
}
