//! Ablation 5 from DESIGN.md: proxies per DPU. The paper maps host ranks
//! to workers with `host_rank % num_proxies_per_dpu`; more workers spread
//! the ARM-side protocol handling but contend for the same DPU port.

use bench_harness::{print_table, us, Args};
use rdma::ClusterSpec;
use workloads::{ialltoall_overlap_on, Runtime};

fn run(args: Args) {
    let nodes = args.nodes.unwrap_or(if args.quick { 2 } else { 8 });
    let ppn = args.pick_ppn(32, 16, 4);
    let iters = args.pick_iters(2, 1);
    let size = 64 * 1024u64;
    let mut rows = Vec::new();
    for proxies in [1usize, 2, 4, 8] {
        if proxies > ppn {
            continue;
        }
        let spec = ClusterSpec::new(nodes, ppn)
            .with_proxies(proxies)
            .without_byte_movement();
        let r = ialltoall_overlap_on(spec, size, iters, 4, Runtime::proposed(), 67);
        rows.push(vec![
            proxies.to_string(),
            us(r.pure_us),
            us(r.overall_us),
            format!("{:.1}%", r.overlap_pct()),
        ]);
    }
    print_table(
        &format!("Ablation — proxies per DPU, Ialltoall 64KiB, {nodes} nodes x {ppn} ppn"),
        &["proxies/DPU", "pure comm", "overall", "overlap"],
        &rows,
    );
    println!("\nExpectation: one proxy serializes all ranks' queue handling on one ARM\ntimeline; a few proxies recover most of the loss, after which the DPU\nport, not the cores, is the limit.");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("ext_proxy_count", || run(args));
}
