//! Paper Fig. 15 — Impact of the group design (single gathered packet +
//! metadata cache) versus Simple/Basic primitives (four control messages
//! per transfer) for a scatter-destination personalized exchange on 8
//! nodes.

use bench_harness::{bytes, print_table, us, Args};
use workloads::{scatter_dest_time, ScatterImpl};

fn run(args: Args) {
    let nodes = args.nodes.unwrap_or(if args.quick { 2 } else { 8 });
    let ppn = args.pick_ppn(32, 16, 2);
    let iters = args.pick_iters(2, 1);
    let sizes: Vec<u64> = if args.quick {
        vec![8 * 1024]
    } else {
        vec![4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024]
    };
    let mut rows = Vec::new();
    for &size in &sizes {
        let (simple_us, simple_msgs) =
            scatter_dest_time(nodes, ppn, size, iters, 1, ScatterImpl::Simple, 47);
        let (group_us, group_msgs) =
            scatter_dest_time(nodes, ppn, size, iters, 1, ScatterImpl::Group, 47);
        rows.push(vec![
            bytes(size),
            us(simple_us),
            us(group_us),
            format!("{:.1}%", 100.0 * (1.0 - group_us / simple_us)),
            simple_msgs.to_string(),
            group_msgs.to_string(),
        ]);
    }
    print_table(
        &format!(
            "Fig. 15 — Scatter-destination: Simple vs Group primitives, {nodes} nodes x {ppn} ppn"
        ),
        &[
            "msg",
            "Simple",
            "Group",
            "improvement",
            "ctrl msgs (simple)",
            "ctrl msgs (group)",
        ],
        &rows,
    );
    println!("\nPaper shape: Group up to ~40% faster; the cache cuts host-DPU control\nmessages from four per transfer to a handful per collective call.");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("fig15_scatter_dest", || run(args));
}
