//! Paper Fig. 14 — Overlap percentage for `MPI_Ialltoall` with BluesMPI,
//! Proposed and IntelMPI on 4, 8 and 16 nodes.

use bench_harness::{bytes, pct, print_table, Args};
use workloads::{ialltoall_overlap, Runtime};

fn run(args: Args) {
    let ppn = args.pick_ppn(32, 16, 2);
    let iters = args.pick_iters(2, 1);
    let node_counts: Vec<usize> = if args.quick { vec![2] } else { vec![4, 8, 16] };
    let sizes: Vec<u64> = if args.quick {
        vec![16 * 1024]
    } else {
        vec![16 * 1024, 64 * 1024, 256 * 1024]
    };
    for &nodes in &node_counts {
        let mut rows = Vec::new();
        for &size in &sizes {
            let blues = ialltoall_overlap(nodes, ppn, size, iters, 4, Runtime::blues(), 43);
            let prop = ialltoall_overlap(nodes, ppn, size, iters, 4, Runtime::proposed(), 43);
            let intel = ialltoall_overlap(nodes, ppn, size, iters, 4, Runtime::Intel, 43);
            rows.push(vec![
                bytes(size),
                pct(blues.overlap_pct()),
                pct(prop.overlap_pct()),
                pct(intel.overlap_pct()),
            ]);
        }
        print_table(
            &format!("Fig. 14 — Ialltoall overlap %, {nodes} nodes x {ppn} ppn"),
            &["msg", "BluesMPI", "Proposed", "IntelMPI"],
            &rows,
        );
    }
    println!("\nPaper shape: both DPU offloads overlap near-fully; IntelMPI does not\n(host progress stalls the scatter-destination schedule during compute).");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("fig14_ialltoall_overlap", || run(args));
}
