//! Extension study — `MPI_Iallgather` overlap across the three runtimes.
//! The BluesMPI authors' HiPC'21 follow-up (reference \[9\] in the paper) offloaded
//! exactly this collective with staging; the ring algorithm's dependent
//! steps make it the sharpest showcase of host-progress stalls.

use bench_harness::{bytes, pct, print_table, us, Args};
use workloads::{iallgather_overlap, Runtime};

fn run(args: Args) {
    let nodes = args.nodes.unwrap_or(if args.quick { 2 } else { 8 });
    let ppn = args.pick_ppn(32, 16, 2);
    let iters = args.pick_iters(2, 1);
    let sizes: Vec<u64> = if args.quick {
        vec![64 * 1024]
    } else {
        vec![16 * 1024, 64 * 1024, 256 * 1024]
    };
    let mut rows = Vec::new();
    for &size in &sizes {
        let intel = iallgather_overlap(nodes, ppn, size, iters, 4, Runtime::Intel, 71);
        let blues = iallgather_overlap(nodes, ppn, size, iters, 4, Runtime::blues(), 71);
        let prop = iallgather_overlap(nodes, ppn, size, iters, 4, Runtime::proposed(), 71);
        rows.push(vec![
            bytes(size),
            us(intel.overall_us),
            us(blues.overall_us),
            us(prop.overall_us),
            pct(intel.overlap_pct()),
            pct(blues.overlap_pct()),
            pct(prop.overlap_pct()),
        ]);
    }
    print_table(
        &format!("Extension — Iallgather overall time and overlap, {nodes} nodes x {ppn} ppn"),
        &[
            "msg",
            "Intel",
            "Blues",
            "Proposed",
            "Intel ovl",
            "Blues ovl",
            "Proposed ovl",
        ],
        &rows,
    );
    println!("\nThe ring's dependent steps need CPU intervention under host MPI; both\noffloads progress them on the DPU, and the GVMI path avoids the staging\nhops' DPU-DRAM bound.");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("ext_allgather", || run(args));
}
