//! Paper Fig. 4 — Communication latency of a non-blocking ping-pong
//! (concurrent two-way isend/irecv) using Host-based MPI vs the staging
//! offload design, plus the proposed GVMI path for reference.

use bench_harness::{bytes, print_table, us, Args};
use workloads::{nonblocking_pingpong_us, P2pEngine};

fn run(args: Args) {
    let iters = args.pick_iters(20, 3);
    let warmup = if args.quick { 1 } else { 5 };
    let sizes: Vec<u64> = (12..=20).map(|p| 1u64 << p).collect(); // 4 KiB .. 1 MiB
    let mut rows = Vec::new();
    for &size in &sizes {
        let host = nonblocking_pingpong_us(size, iters, warmup, P2pEngine::Host, 11);
        let staging = nonblocking_pingpong_us(size, iters, warmup, P2pEngine::Staging, 11);
        let gvmi = nonblocking_pingpong_us(size, iters, warmup, P2pEngine::Gvmi, 11);
        rows.push(vec![
            bytes(size),
            us(host),
            us(staging),
            us(gvmi),
            format!("{:.2}x", staging / host),
        ]);
    }
    print_table(
        "Fig. 4 — Non-blocking ping-pong latency: Host vs Staging (GVMI for reference)",
        &["size", "host", "staging", "gvmi", "staging/host"],
        &rows,
    );
    println!("\nPaper shape: staging degraded vs direct host-host transfers at every size.");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("fig04_pingpong_staging", || run(args));
}
