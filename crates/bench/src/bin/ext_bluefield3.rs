//! Extension study (the paper's stated future work): how the proposed
//! framework and the baselines shift on a BlueField-3 / NDR-class testbed
//! — ~2× faster DPU cores, 400 Gb/s ports, PCIe Gen5, DDR5 DPU memory.

use bench_harness::{bytes, print_table, us, Args};
use rdma::{ClusterSpec, NicModel};
use workloads::{ialltoall_overlap_on, Runtime};

fn run(args: Args) {
    let nodes = args.nodes.unwrap_or(if args.quick { 2 } else { 8 });
    let ppn = args.pick_ppn(32, 16, 2);
    let iters = args.pick_iters(2, 1);
    let sizes: Vec<u64> = if args.quick {
        vec![64 * 1024]
    } else {
        vec![16 * 1024, 64 * 1024, 256 * 1024]
    };
    let mut rows = Vec::new();
    for &size in &sizes {
        let mut cells = vec![bytes(size)];
        for model in [NicModel::bluefield2(), NicModel::bluefield3()] {
            for rt in [Runtime::blues(), Runtime::proposed()] {
                let spec = ClusterSpec::new(nodes, ppn)
                    .with_model(model.clone())
                    .without_byte_movement();
                let r = ialltoall_overlap_on(spec, size, iters, 4, rt, 61);
                cells.push(us(r.overall_us));
            }
        }
        rows.push(cells);
    }
    print_table(
        &format!("Extension — Ialltoall overall time on BF-2 vs BF-3 class hardware, {nodes} nodes x {ppn} ppn"),
        &["msg", "BF2 Blues", "BF2 Proposed", "BF3 Blues", "BF3 Proposed"],
        &rows,
    );
    println!("\nExpectation: faster ARM cores and DPU DRAM narrow the staging penalty,\nbut the cross-GVMI path keeps its lead (it rides the host-rate path on\nboth generations). This is the experiment the paper defers to future work.");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("ext_bluefield3", || run(args));
}
