//! Paper Fig. 2 — RDMA-Write latency: Host-to-Host versus Host-to-DPU.
//!
//! Verbs-level measurement on two nodes: a host endpoint posts writes into
//! a remote host's memory vs. a remote DPU's memory. The paper observes
//! the latencies are close (the DPU's extra per-message handling is small
//! against the wire latency).

use bench_harness::{bytes, print_table, us, Args};
use rdma::{ClusterSpec, DeviceClass, Fabric, NetMsg};
use simnet::Simulation;
use std::sync::{Arc, Mutex};

fn one_way_latency_us(dst_is_dpu: bool, size: u64, iters: u32) -> f64 {
    let mut sim = Simulation::new(2);
    let fabric = Fabric::new(&mut sim, ClusterSpec::new(2, 1));
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = Arc::clone(&out);
    let fab = fabric.clone();
    sim.spawn("driver", move |ctx| {
        let src = fab.add_endpoint(ctx.pid(), 0, DeviceClass::Host);
        let dst = fab.add_endpoint(
            ctx.pid(),
            1,
            if dst_is_dpu {
                DeviceClass::Dpu
            } else {
                DeviceClass::Host
            },
        );
        let sbuf = fab.alloc(src, size);
        let dbuf = fab.alloc(dst, size);
        let lkey = fab.reg_mr(&ctx, src, sbuf, size).unwrap();
        let rkey = fab.reg_mr(&ctx, dst, dbuf, size).unwrap();
        let mut total = 0.0;
        for i in 0..iters {
            let t0 = ctx.now();
            fab.rdma_write(
                &ctx,
                src,
                (src, sbuf, lkey),
                (dst, dbuf, rkey),
                size,
                Some(i as u64),
                None,
            )
            .unwrap();
            // Wait for the completion, then count only the one-way part.
            loop {
                if matches!(*ctx.recv().downcast::<NetMsg>().unwrap(), NetMsg::Cqe(_)) {
                    break;
                }
            }
            let rtt = (ctx.now() - t0).as_us_f64();
            let ack = fab.spec().model.ack_latency.as_us_f64();
            total += rtt - ack;
        }
        *out2.lock().unwrap() = total / iters as f64;
    });
    sim.run().unwrap();
    let v = *out.lock().unwrap();
    v
}

fn run(args: Args) {
    let iters = args.pick_iters(50, 5);
    let sizes: Vec<u64> = (0..=12).map(|p| 1u64 << p).collect();
    let mut rows = Vec::new();
    for &size in &sizes {
        let hh = one_way_latency_us(false, size, iters);
        let hd = one_way_latency_us(true, size, iters);
        rows.push(vec![
            bytes(size),
            us(hh),
            us(hd),
            format!("{:.2}x", hd / hh),
        ]);
    }
    print_table(
        "Fig. 2 — RDMA-Write latency, Host-to-Host vs Host-to-DPU (one-way)",
        &["size", "host-host", "host-DPU", "ratio"],
        &rows,
    );
    println!("\nPaper shape: host-DPU latency close to host-host (small constant ratio).");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("fig02_rdma_latency", || run(args));
}
