//! Paper Fig. 11 — 3DStencil normalized overall time (compute + halo
//! exchange overlapped), Proposed (GVMI point-to-point offload) vs
//! IntelMPI, on 16 nodes. Lower is better; values normalized to IntelMPI.

use bench_harness::{print_table, us, Args};
use workloads::{stencil3d, Runtime};

fn run(args: Args) {
    let nodes = args.nodes.unwrap_or(if args.quick { 2 } else { 16 });
    let ppn = args.pick_ppn(32, 32, 4);
    let iters = args.pick_iters(3, 1);
    let grids: Vec<u64> = if args.quick {
        vec![128, 256]
    } else {
        vec![512, 1024, 2048]
    };
    let mut rows = Vec::new();
    for &n in &grids {
        let intel = stencil3d(nodes, ppn, n, iters, 1, Runtime::Intel, 31);
        let prop = stencil3d(nodes, ppn, n, iters, 1, Runtime::proposed(), 31);
        rows.push(vec![
            format!("{n}^3"),
            us(intel.overall_us),
            us(prop.overall_us),
            format!("{:.3}", prop.overall_us / intel.overall_us),
        ]);
    }
    print_table(
        &format!(
            "Fig. 11 — 3DStencil overall time, {nodes} nodes x {ppn} ppn (normalized to IntelMPI)"
        ),
        &["grid", "IntelMPI", "Proposed", "Proposed/Intel"],
        &rows,
    );
    println!("\nPaper shape: Proposed >20% faster overall, widening at the largest grid\n(IntelMPI loses overlap once halos go rendezvous).");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("fig11_stencil_time", || run(args));
}
