//! The engine self-benchmark: one fixed alltoall spec run at 1, 2 and 4
//! worker threads.
//!
//! Two jobs in one binary:
//!
//! 1. **Equivalence.** The three runs must produce identical
//!    [`workloads::ScaleRun`]s — same fingerprint, event count and
//!    virtual time. Any divergence aborts the bench: worker threads are
//!    a speed knob, never an observable.
//! 2. **Speed.** Wall time and simulated events/sec per thread count go
//!    into the `"engine"` section of the artifact, which bench-diff
//!    holds to the wall tolerance band (exact counters stay exact).
//!    Speedups are honest measurements: on a single-CPU machine they
//!    hover around 1.0 and the synchronization overhead is visible —
//!    see EXPERIMENTS.md.
//!
//! Scales: `--quick` 64 ranks (the committed CI baseline), default
//! 1024 ranks, `--full` 4096 ranks.

use workloads::{scale_alltoall, ScaleRun, ScaleSpec};

const THREAD_STEPS: [usize; 3] = [1, 2, 4];

fn main() {
    let args = bench_harness::Args::parse();
    let nodes = args.nodes.unwrap_or(if args.full {
        64
    } else if args.quick {
        8
    } else {
        32
    });
    let base_spec = ScaleSpec {
        nodes,
        ppn: args.pick_ppn(64, 32, 8),
        iters: args.pick_iters(1, 1),
        seed: 42,
        threads: 1,
    };

    let mut rows = Vec::new();
    let mut walls: Vec<(usize, f64)> = Vec::new();
    let mut base: Option<ScaleRun> = None;
    for &threads in &THREAD_STEPS {
        let spec = ScaleSpec {
            threads,
            ..base_spec
        };
        let stop = bench_harness::wall_timer();
        let run = scale_alltoall(&spec);
        let wall_ms = stop();
        match &base {
            None => base = Some(run),
            Some(b) => assert_eq!(
                *b, run,
                "engine produced different results at {threads} threads — \
                 worker count must never be observable"
            ),
        }
        rows.push(vec![
            threads.to_string(),
            run.events.to_string(),
            bench_harness::us(wall_ms * 1e3),
            bench_harness::fmt_f64(run.events as f64 / (wall_ms / 1e3).max(1e-9)),
        ]);
        walls.push((threads, wall_ms));
    }
    let run = base.expect("at least one thread step ran");

    bench_harness::print_table(
        &format!(
            "engine self-benchmark: {}-rank alltoall, identical results required",
            base_spec.ranks()
        ),
        &["threads", "events", "wall", "events/sec"],
        &rows,
    );

    let mut keys = vec![
        ("events".into(), run.events.to_string()),
        ("virtual_ns".into(), run.virtual_ns.to_string()),
        ("shards".into(), run.shards.to_string()),
        ("windows".into(), run.windows.to_string()),
        ("xshard_events".into(), run.xshard_events.to_string()),
    ];
    if bench_harness::wall_enabled() {
        let t1_wall = walls[0].1;
        for &(threads, wall_ms) in &walls {
            keys.push((
                format!("t{threads}_wall_ms"),
                bench_harness::fmt_f64(wall_ms),
            ));
            keys.push((
                format!("t{threads}_events_per_sec"),
                bench_harness::fmt_f64(run.events as f64 / (wall_ms / 1e3).max(1e-9)),
            ));
            if threads > 1 {
                keys.push((
                    format!("t{threads}_speedup"),
                    bench_harness::fmt_f64(t1_wall / wall_ms.max(1e-9)),
                ));
            }
        }
    }

    let name = bench_harness::scale_artifact_name("engine_speed", &args, base_spec.ranks());
    bench_harness::write_metrics_with(
        &name,
        &offload::MetricsReport::default(),
        &[
            bench_harness::scale_section(&base_spec, &run),
            ("engine", keys),
        ],
    );
}
