//! The engine self-benchmark: one fixed alltoall spec run at 1, 2 and 4
//! worker threads.
//!
//! Two jobs in one binary:
//!
//! 1. **Equivalence.** The three runs must produce identical
//!    [`workloads::ScaleRun`]s — same fingerprint, event count and
//!    virtual time. Any divergence aborts the bench: worker threads are
//!    a speed knob, never an observable.
//! 2. **Speed.** Wall time and simulated events/sec per thread count go
//!    into the `"engine"` section of the artifact, which bench-diff
//!    holds to the wall tolerance band (exact counters stay exact).
//!    Speedups are honest measurements: on a single-CPU machine they
//!    hover around 1.0 and the synchronization overhead is visible —
//!    see EXPERIMENTS.md.
//!
//! Scales: `--quick` 64 ranks (the committed CI baseline), default
//! 1024 ranks, `--full` 4096 ranks.

use workloads::{scale_alltoall, scale_alltoall_with, ScaleObs, ScaleRun, ScaleSpec};

const THREAD_STEPS: [usize; 3] = [1, 2, 4];

/// Interleaved best-of-N timing for the profiling-overhead gate: wall
/// noise on shared CI machines dwarfs a 5% bound on single samples
/// (the --quick spec runs for tens of milliseconds), so both sides are
/// measured `reps` times, alternating, and the minima compared.
const OVERHEAD_REPS: usize = 5;

/// Outputs of the `BENCH_PROFILE=1` leg.
struct ProfiledLeg {
    run: ScaleRun,
    engine: Option<simnet::EngineProfile>,
    report: offload::ProfileReport,
    snapshots: Vec<obs::TelemetrySnapshot>,
    best_plain_ms: f64,
    best_prof_ms: f64,
}

/// Re-run the spec with the full self-profiling stack attached,
/// interleaving unprofiled and profiled repetitions for the overhead
/// ratio. The profiled `ScaleRun` must equal the unprofiled one —
/// profiling is observation, never perturbation.
fn run_profiled(spec: &ScaleSpec) -> ProfiledLeg {
    let mut best_plain_ms = f64::INFINITY;
    let mut best_prof_ms = f64::INFINITY;
    let mut outputs = None;
    for _ in 0..OVERHEAD_REPS {
        offload::profile::set_enabled(false);
        let stop = bench_harness::wall_timer();
        let plain = scale_alltoall(spec);
        best_plain_ms = best_plain_ms.min(stop());

        offload::profile::set_enabled(true);
        let bus = obs::TelemetryBus::new(bench_harness::telemetry_interval_ps());
        let stop = bench_harness::wall_timer();
        let (prof, engine) = scale_alltoall_with(
            spec,
            ScaleObs {
                sink: Some(bus.sink()),
                profile: true,
            },
        );
        best_prof_ms = best_prof_ms.min(stop());
        offload::profile::set_enabled(false);
        let report = offload::profile::take_report();
        assert_eq!(
            plain, prof,
            "profiling perturbed the run — BENCH_PROFILE must be observation only"
        );
        let (_, snapshots) = bus.finish();
        outputs = Some((prof, engine, report, snapshots));
    }
    let (run, engine, report, snapshots) = outputs.expect("at least one overhead rep");
    ProfiledLeg {
        run,
        engine,
        report,
        snapshots,
        best_plain_ms,
        best_prof_ms,
    }
}

fn main() {
    let args = bench_harness::Args::parse();
    let nodes = args.nodes.unwrap_or(if args.full {
        64
    } else if args.quick {
        8
    } else {
        32
    });
    let base_spec = ScaleSpec {
        nodes,
        ppn: args.pick_ppn(64, 32, 8),
        iters: args.pick_iters(1, 1),
        seed: 42,
        threads: 1,
    };

    let mut rows = Vec::new();
    let mut walls: Vec<(usize, f64)> = Vec::new();
    let mut base: Option<ScaleRun> = None;
    for &threads in &THREAD_STEPS {
        let spec = ScaleSpec {
            threads,
            ..base_spec
        };
        let stop = bench_harness::wall_timer();
        let run = scale_alltoall(&spec);
        let wall_ms = stop();
        match &base {
            None => base = Some(run),
            Some(b) => assert_eq!(
                *b, run,
                "engine produced different results at {threads} threads — \
                 worker count must never be observable"
            ),
        }
        rows.push(vec![
            threads.to_string(),
            run.events.to_string(),
            bench_harness::us(wall_ms * 1e3),
            bench_harness::fmt_f64(run.events as f64 / (wall_ms / 1e3).max(1e-9)),
        ]);
        walls.push((threads, wall_ms));
    }
    let run = base.expect("at least one thread step ran");

    bench_harness::print_table(
        &format!(
            "engine self-benchmark: {}-rank alltoall, identical results required",
            base_spec.ranks()
        ),
        &["threads", "events", "wall", "events/sec"],
        &rows,
    );

    let mut keys = vec![
        ("events".into(), run.events.to_string()),
        ("virtual_ns".into(), run.virtual_ns.to_string()),
        ("shards".into(), run.shards.to_string()),
        ("windows".into(), run.windows.to_string()),
        ("xshard_events".into(), run.xshard_events.to_string()),
    ];
    if bench_harness::wall_enabled() {
        let t1_wall = walls[0].1;
        for &(threads, wall_ms) in &walls {
            keys.push((
                format!("t{threads}_wall_ms"),
                bench_harness::fmt_f64(wall_ms),
            ));
            keys.push((
                format!("t{threads}_events_per_sec"),
                bench_harness::fmt_f64(run.events as f64 / (wall_ms / 1e3).max(1e-9)),
            ));
            if threads > 1 {
                keys.push((
                    format!("t{threads}_speedup"),
                    bench_harness::fmt_f64(t1_wall / wall_ms.max(1e-9)),
                ));
            }
        }
    }

    let name = bench_harness::scale_artifact_name("engine_speed", &args, base_spec.ranks());
    let mut sections = vec![
        bench_harness::scale_section(&base_spec, &run),
        ("engine", keys),
    ];

    let mut gate_failure = None;
    if bench_harness::profile_enabled() {
        let spec = ScaleSpec {
            threads: args.pick_threads(),
            ..base_spec
        };
        let leg = run_profiled(&spec);
        assert_eq!(
            run, leg.run,
            "profiled run diverged from the unprofiled thread sweep"
        );
        let overhead_pct =
            ((leg.best_prof_ms - leg.best_plain_ms) / leg.best_plain_ms.max(1e-9) * 100.0).max(0.0);

        let mut profile_keys = vec![
            ("snapshots".into(), leg.snapshots.len().to_string()),
            ("scopes".into(), leg.report.scopes.len().to_string()),
        ];
        if bench_harness::wall_enabled() {
            profile_keys.push((
                "baseline_wall_ms".into(),
                bench_harness::fmt_f64(leg.best_plain_ms),
            ));
            profile_keys.push((
                "profiled_wall_ms".into(),
                bench_harness::fmt_f64(leg.best_prof_ms),
            ));
            profile_keys.push(("overhead_pct".into(), bench_harness::fmt_f64(overhead_pct)));
        }
        sections.push(("profile", profile_keys));

        let doc = obs::render_profile(&obs::ProfileDoc {
            bench: &name,
            report: &leg.report,
            engine: leg.engine.as_ref(),
            snapshots: &leg.snapshots,
            wall: bench_harness::wall_enabled(),
        });
        bench_harness::write_profile(&name, &doc, &leg.report.collapsed_stack());

        if let Some(engine) = &leg.engine {
            bench_harness::print_table(
                "engine time attribution (profiled re-run)",
                &["bucket", "ns"],
                &engine
                    .buckets()
                    .iter()
                    .map(|(k, v)| vec![k.to_string(), v.to_string()])
                    .collect::<Vec<_>>(),
            );
        }
        println!(
            "\nprofiling overhead: {} -> {} ({}%, best of {OVERHEAD_REPS})",
            bench_harness::fmt_f64(leg.best_plain_ms),
            bench_harness::fmt_f64(leg.best_prof_ms),
            bench_harness::fmt_f64(overhead_pct),
        );
        if let Some(gate) = std::env::var("BENCH_PROFILE_GATE_PCT")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
        {
            if overhead_pct > gate {
                gate_failure = Some(format!(
                    "profiling overhead {overhead_pct:.3}% exceeds the {gate}% gate"
                ));
            }
        }
    }

    bench_harness::write_metrics_with(&name, &offload::MetricsReport::default(), &sections);

    if let Some(msg) = gate_failure {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}
