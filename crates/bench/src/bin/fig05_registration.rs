//! Paper Fig. 5 — The two memory registrations a DPU process needs before
//! it can move data with cross-GVMI: the host-side GVMI registration
//! (producing the mkey) and the DPU-side cross-registration (producing
//! mkey2), as a function of buffer size.

use bench_harness::{bytes, print_table, us, Args};
use rdma::{ClusterSpec, DeviceClass, Fabric};
use simnet::Simulation;
use std::sync::{Arc, Mutex};

fn reg_costs_us(size: u64) -> (f64, f64) {
    let mut sim = Simulation::new(5);
    let fabric = Fabric::new(&mut sim, ClusterSpec::new(1, 1));
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let out2 = Arc::clone(&out);
    let fab = fabric.clone();
    sim.spawn("driver", move |ctx| {
        let host = fab.add_endpoint(ctx.pid(), 0, DeviceClass::Host);
        let dpu = fab.add_endpoint(ctx.pid(), 0, DeviceClass::Dpu);
        let gvmi = fab.gvmi_of(dpu).unwrap();
        let buf = fab.alloc(host, size);
        let mkey = fab.reg_mr_gvmi(&ctx, host, buf, size, gvmi).unwrap();
        let host_cost = (fab.cpu_available(host) - ctx.now()).as_us_f64();
        fab.cross_reg(&ctx, dpu, buf, size, mkey, gvmi).unwrap();
        let cross_cost = (fab.cpu_available(dpu) - ctx.now()).as_us_f64();
        *out2.lock().unwrap() = (host_cost, cross_cost);
    });
    sim.run().unwrap();
    let v = *out.lock().unwrap();
    v
}

fn run(_args: Args) {
    let sizes: Vec<u64> = (12..=24).step_by(2).map(|p| 1u64 << p).collect(); // 4 KiB .. 16 MiB
    let mut rows = Vec::new();
    for &size in &sizes {
        let (host, cross) = reg_costs_us(size);
        rows.push(vec![bytes(size), us(host), us(cross), us(host + cross)]);
    }
    print_table(
        "Fig. 5 — Registration overheads for a cross-GVMI transfer",
        &[
            "size",
            "host GVMI reg (mkey)",
            "DPU cross-reg (mkey2)",
            "total",
        ],
        &rows,
    );
    println!("\nPaper shape: both registrations grow with buffer size; the sum is what an\nuncached transfer pays — the motivation for the two-sided registration caches.");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("fig05_registration", || run(args));
}
