//! Paper Fig. 16 — P3DFFT application runtime, normalized to IntelMPI
//! (lower is better), plus the single forward-phase profile (16c) showing
//! where BluesMPI's unwarmed cold start hurts.

use bench_harness::{print_table, us, Args};
use workloads::{p3dfft, Runtime};

fn run_set(nodes: usize, ppn: usize, xy: u64, zs: &[u64], iters: u32, tag: &str) {
    let mut rows = Vec::new();
    let mut profile_rows = Vec::new();
    for &z in zs {
        let intel = p3dfft(nodes, ppn, (xy, xy, z), iters, Runtime::Intel, 53);
        let blues = p3dfft(nodes, ppn, (xy, xy, z), iters, Runtime::blues(), 53);
        let prop = p3dfft(nodes, ppn, (xy, xy, z), iters, Runtime::proposed(), 53);
        rows.push(vec![
            format!("{xy}x{xy}x{z}"),
            format!("{:.3}", 1.0),
            format!("{:.3}", blues.total_us / intel.total_us),
            format!("{:.3}", prop.total_us / intel.total_us),
        ]);
        profile_rows.push(vec![
            format!("{xy}x{xy}x{z}"),
            us(intel.phase_compute_us),
            us(intel.phase_mpi_us),
            us(blues.phase_mpi_us),
            us(prop.phase_mpi_us),
        ]);
    }
    print_table(
        &format!("Fig. 16{tag} — P3DFFT runtime normalized to IntelMPI, {nodes} nodes x {ppn} ppn"),
        &["grid", "IntelMPI", "BluesMPI", "Proposed"],
        &rows,
    );
    print_table(
        &format!("Fig. 16c-style profile (first forward phase), {nodes} nodes x {ppn} ppn"),
        &[
            "grid",
            "compute",
            "Intel MPI time",
            "Blues MPI time",
            "Proposed MPI time",
        ],
        &profile_rows,
    );
}

fn run(args: Args) {
    let iters = args.pick_iters(1, 1);
    if args.quick {
        run_set(
            2,
            args.pick_ppn(32, 16, 2),
            64,
            &[128, 256],
            iters,
            "(quick)",
        );
        return;
    }
    let ppn = args.pick_ppn(32, 16, 2);
    // Fig. 16a: 8 nodes, X=Y=256, Z in 512..2048.
    run_set(8, ppn, 256, &[512, 1024, 2048], iters, "a");
    // Fig. 16b: 16 nodes, X=Y=512, Z in 1024..4096 (the largest grid is
    // hours of simulated alltoall traffic; default trims it to keep the
    // sweep in minutes — pass --full for the paper's full set).
    let z16: &[u64] = if args.full {
        &[1024, 2048, 4096]
    } else {
        &[1024, 2048]
    };
    run_set(16, ppn, 512, z16, iters, "b");
    println!("\nPaper shape: Proposed fastest (up to 16-20% vs IntelMPI, 55-60% vs BluesMPI);\nBluesMPI slowest at app level because its first unwarmed iterations degrade —\nvisible as the large BluesMPI 'time in MPI' in the phase profile.");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("fig16_p3dfft", || run(args));
}
