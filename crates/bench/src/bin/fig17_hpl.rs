//! Paper Fig. 17 — HPL total runtime for problem sizes occupying 5–75 %
//! of system memory, normalized to IntelMPI-HPL-1ring (lower is better).

use bench_harness::{print_table, Args};
use workloads::{hpl_runtime_us, matrix_order, HplAlgo};

fn run(args: Args) {
    let nodes = args.nodes.unwrap_or(if args.quick { 2 } else { 16 });
    let ppn = args.pick_ppn(32, 16, 4);
    let fractions: Vec<f64> = if args.quick {
        vec![0.05, 0.10]
    } else {
        vec![0.05, 0.10, 0.25, 0.50, 0.75]
    };
    let algos = [
        HplAlgo::Ring1,
        HplAlgo::IntelIbcast,
        HplAlgo::Blues,
        HplAlgo::Proposed,
    ];
    let mut rows = Vec::new();
    for &frac in &fractions {
        let n = matrix_order(nodes, frac);
        let times: Vec<f64> = algos
            .iter()
            .map(|&a| hpl_runtime_us(nodes, ppn, frac, a, 59))
            .collect();
        let base = times[0];
        rows.push(vec![
            format!("{:.0}%", frac * 100.0),
            format!("N={n}"),
            format!("{:.3}", times[0] / base),
            format!("{:.3}", times[1] / base),
            format!("{:.3}", times[2] / base),
            format!("{:.3}", times[3] / base),
        ]);
    }
    print_table(
        &format!(
            "Fig. 17 — HPL runtime normalized to IntelMPI-HPL-1ring, {nodes} nodes x {ppn} ppn"
        ),
        &[
            "memory",
            "order",
            "1ring",
            "Intel-Ibcast",
            "BluesMPI",
            "Proposed",
        ],
        &rows,
    );
    println!("\nPaper shape: Proposed lowest everywhere (15-18% at 5-10% memory), but its\nadvantage shrinks toward ~8.5% at 50-75% (large-transfer GVMI registration\noverheads); BluesMPI tracks 1ring.");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("fig17_hpl", || run(args));
}
