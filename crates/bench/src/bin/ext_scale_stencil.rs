//! Extension: 3-D halo-exchange stencil at 1k–4k ranks on the sharded
//! engine.
//!
//! The low-message-density complement to `ext_scale_alltoall`: six
//! neighbour exchanges plus a compute phase per iteration, so the run
//! is dominated by synchronization windows rather than deliveries —
//! the worst case for conservative-lookahead overhead.
//!
//! Scales: `--quick` 8x8 (64 ranks, the committed CI baseline),
//! default 32x32 (1024 ranks), `--full` 64x64 (4096 ranks).

use workloads::{scale_stencil, ScaleSpec};

fn main() {
    let args = bench_harness::Args::parse();
    let nodes = args.nodes.unwrap_or(if args.full {
        64
    } else if args.quick {
        8
    } else {
        32
    });
    let spec = ScaleSpec {
        nodes,
        ppn: args.pick_ppn(64, 32, 8),
        iters: args.pick_iters(4, 2),
        seed: 42,
        threads: args.pick_threads(),
    };
    let stop = bench_harness::wall_timer();
    let run = scale_stencil(&spec);
    let wall_ms = stop();

    bench_harness::print_table(
        "ext: sharded-engine stencil scale",
        &[
            "ranks",
            "nodes",
            "threads",
            "iters",
            "events",
            "virt",
            "windows",
            "fingerprint",
        ],
        &[vec![
            spec.ranks().to_string(),
            spec.nodes.to_string(),
            spec.threads.to_string(),
            spec.iters.to_string(),
            run.events.to_string(),
            bench_harness::us(run.virtual_ns as f64 / 1e3),
            run.windows.to_string(),
            format!("{:#x}", run.fingerprint),
        ]],
    );
    println!(
        "wall: {} ({} simulated events/sec)",
        bench_harness::us(wall_ms * 1e3),
        bench_harness::fmt_f64(run.events as f64 / (wall_ms / 1e3).max(1e-9)),
    );

    let name = bench_harness::scale_artifact_name("ext_scale_stencil", &args, spec.ranks());
    bench_harness::write_metrics_with(
        &name,
        &offload::MetricsReport::default(),
        &[
            bench_harness::scale_section(&spec, &run),
            bench_harness::engine_section(&run, spec.threads, wall_ms),
        ],
    );
}
