//! Paper Fig. 13 — Overall time (communication + overlapped compute) for
//! `MPI_Ialltoall` with BluesMPI, Proposed and IntelMPI on 4, 8 and 16
//! nodes.

use bench_harness::{bytes, print_table, us, Args};
use workloads::{ialltoall_overlap, Runtime};

fn run(args: Args) {
    // Paper: 32 PPN. Default 16 PPN keeps the 16-node sweep to minutes.
    let ppn = args.pick_ppn(32, 16, 2);
    let iters = args.pick_iters(2, 1);
    let node_counts: Vec<usize> = if args.quick { vec![2] } else { vec![4, 8, 16] };
    let sizes: Vec<u64> = if args.quick {
        vec![16 * 1024]
    } else {
        vec![16 * 1024, 64 * 1024, 256 * 1024]
    };
    for &nodes in &node_counts {
        let mut rows = Vec::new();
        for &size in &sizes {
            let blues = ialltoall_overlap(nodes, ppn, size, iters, 4, Runtime::blues(), 41);
            let prop = ialltoall_overlap(nodes, ppn, size, iters, 4, Runtime::proposed(), 41);
            let intel = ialltoall_overlap(nodes, ppn, size, iters, 4, Runtime::Intel, 41);
            rows.push(vec![
                bytes(size),
                us(blues.overall_us),
                us(prop.overall_us),
                us(intel.overall_us),
                format!("{:.1}%", 100.0 * (1.0 - prop.overall_us / blues.overall_us)),
                format!("{:.1}%", 100.0 * (1.0 - prop.overall_us / intel.overall_us)),
            ]);
        }
        print_table(
            &format!("Fig. 13 — Ialltoall overall time, {nodes} nodes x {ppn} ppn"),
            &[
                "msg", "BluesMPI", "Proposed", "IntelMPI", "vs Blues", "vs Intel",
            ],
            &rows,
        );
    }
    println!("\nPaper shape: Proposed beats BluesMPI (25-47%) and IntelMPI (35-58%),\nimproving with scale.");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("fig13_ialltoall_time", || run(args));
}
