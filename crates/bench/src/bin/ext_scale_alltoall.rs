//! Extension: dense alltoall at 1k–4k ranks on the sharded engine.
//!
//! Not a paper figure — an engine-scale demonstration: every rank sends
//! to every other rank each round (~1M deliveries per round at 1k
//! ranks), one shard per node, and the run's fingerprint/virtual-time
//! observables must be identical at every worker thread count.
//!
//! Scales: `--quick` 8x8 (64 ranks, the committed CI baseline),
//! default 32x32 (1024 ranks), `--full` 64x64 (4096 ranks). `--threads`
//! or `SIMNET_THREADS` picks the worker count (default 2); the artifact
//! name carries the rank count outside `--quick`.

use workloads::{scale_alltoall, ScaleSpec};

fn main() {
    let args = bench_harness::Args::parse();
    let nodes = args.nodes.unwrap_or(if args.full {
        64
    } else if args.quick {
        8
    } else {
        32
    });
    let spec = ScaleSpec {
        nodes,
        ppn: args.pick_ppn(64, 32, 8),
        iters: args.pick_iters(1, 1),
        seed: 42,
        threads: args.pick_threads(),
    };
    let stop = bench_harness::wall_timer();
    let run = scale_alltoall(&spec);
    let wall_ms = stop();

    bench_harness::print_table(
        "ext: sharded-engine alltoall scale",
        &[
            "ranks",
            "nodes",
            "threads",
            "events",
            "virt",
            "windows",
            "xshard",
            "fingerprint",
        ],
        &[vec![
            spec.ranks().to_string(),
            spec.nodes.to_string(),
            spec.threads.to_string(),
            run.events.to_string(),
            bench_harness::us(run.virtual_ns as f64 / 1e3),
            run.windows.to_string(),
            run.xshard_events.to_string(),
            format!("{:#x}", run.fingerprint),
        ]],
    );
    println!(
        "wall: {} ({} simulated events/sec)",
        bench_harness::us(wall_ms * 1e3),
        bench_harness::fmt_f64(run.events as f64 / (wall_ms / 1e3).max(1e-9)),
    );

    let name = bench_harness::scale_artifact_name("ext_scale_alltoall", &args, spec.ranks());
    bench_harness::write_metrics_with(
        &name,
        &offload::MetricsReport::default(),
        &[
            bench_harness::scale_section(&spec, &run),
            bench_harness::engine_section(&run, spec.threads, wall_ms),
        ],
    );
}
