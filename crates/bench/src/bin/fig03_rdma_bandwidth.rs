//! Paper Fig. 3 — RDMA-Write bandwidth: Host-to-Host versus Host-to-DPU,
//! normalized to Host-to-Host (higher is better).
//!
//! Streaming measurement (window of back-to-back writes). The paper found
//! host-to-DPU reaches roughly *half* the host-to-host bandwidth for
//! smaller messages — the DPU's ARM cores limit its per-message handling
//! rate — converging for large messages.

use bench_harness::{bytes, print_table, Args};
use rdma::{ClusterSpec, DeviceClass, Fabric, NetMsg};
use simnet::Simulation;
use std::sync::{Arc, Mutex};

const WINDOW: u32 = 64;

fn bandwidth_gbs(dst_is_dpu: bool, size: u64, windows: u32) -> f64 {
    let mut sim = Simulation::new(3);
    let fabric = Fabric::new(&mut sim, ClusterSpec::new(2, 1));
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = Arc::clone(&out);
    let fab = fabric.clone();
    sim.spawn("driver", move |ctx| {
        let src = fab.add_endpoint(ctx.pid(), 0, DeviceClass::Host);
        let dst = fab.add_endpoint(
            ctx.pid(),
            1,
            if dst_is_dpu {
                DeviceClass::Dpu
            } else {
                DeviceClass::Host
            },
        );
        let sbuf = fab.alloc(src, size);
        let dbuf = fab.alloc(dst, size);
        let lkey = fab.reg_mr(&ctx, src, sbuf, size).unwrap();
        let rkey = fab.reg_mr(&ctx, dst, dbuf, size).unwrap();
        let t0 = ctx.now();
        let mut sent = 0u64;
        for _ in 0..windows {
            for i in 0..WINDOW {
                let signal = if i == WINDOW - 1 {
                    Some(i as u64)
                } else {
                    None
                };
                fab.rdma_write(
                    &ctx,
                    src,
                    (src, sbuf, lkey),
                    (dst, dbuf, rkey),
                    size,
                    signal,
                    None,
                )
                .unwrap();
                sent += size;
            }
            loop {
                if matches!(*ctx.recv().downcast::<NetMsg>().unwrap(), NetMsg::Cqe(_)) {
                    break;
                }
            }
        }
        let secs = (ctx.now() - t0).as_secs_f64();
        *out2.lock().unwrap() = sent as f64 / secs / 1e9;
    });
    sim.run().unwrap();
    let v = *out.lock().unwrap();
    v
}

fn run(args: Args) {
    let windows = args.pick_iters(10, 2);
    let sizes: Vec<u64> = (6..=17).map(|p| 1u64 << p).collect();
    let mut rows = Vec::new();
    for &size in &sizes {
        let hh = bandwidth_gbs(false, size, windows);
        let hd = bandwidth_gbs(true, size, windows);
        rows.push(vec![
            bytes(size),
            format!("{hh:.2}"),
            format!("{hd:.2}"),
            format!("{:.2}", hd / hh),
        ]);
    }
    print_table(
        "Fig. 3 — RDMA-Write bandwidth (GB/s), Host-to-Host vs Host-to-DPU",
        &["size", "host-host", "host-DPU", "normalized"],
        &rows,
    );
    println!("\nPaper shape: host-DPU ≈ 0.5x for small messages, converging toward 1x for large.");
}

fn main() {
    let args = Args::parse();
    bench_harness::run_with_observability("fig03_rdma_bandwidth", || run(args));
}
