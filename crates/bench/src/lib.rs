//! Support code for the figure-regeneration binaries.
//!
//! Every `fig*` binary accepts:
//!
//! * `--full` — run at the paper's full scale (32 processes per node where
//!   the paper used 32). The default runs a reduced-PPN configuration that
//!   preserves every qualitative shape while finishing in minutes.
//! * `--quick` — tiny smoke-test scale (seconds).
//! * `--nodes N`, `--ppn N`, `--iters N` — explicit overrides.
//!
//! Output is aligned text tables, one per paper figure, with the measured
//! series the figure plots.

/// Parsed command-line options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Paper-scale run.
    pub full: bool,
    /// Smoke-test run.
    pub quick: bool,
    /// Override node count.
    pub nodes: Option<usize>,
    /// Override processes per node.
    pub ppn: Option<usize>,
    /// Override measured iterations.
    pub iters: Option<u32>,
    /// Override engine worker threads (`ext_scale_*`/`engine_speed`).
    pub threads: Option<usize>,
}

impl Args {
    /// Parse from `std::env::args`. Prints a clean error and exits with
    /// status 2 on invalid input.
    pub fn parse() -> Args {
        fn die(msg: &str) -> ! {
            eprintln!("error: {msg}");
            eprintln!("options: --full | --quick | --nodes N | --ppn N | --iters N | --threads N");
            std::process::exit(2);
        }
        fn value<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
            match it.next() {
                Some(v) => v.parse().unwrap_or_else(|_| {
                    die(&format!("{flag} expects a positive number, got '{v}'"))
                }),
                None => die(&format!("{flag} requires a value")),
            }
        }
        let mut out = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => out.full = true,
                "--quick" => out.quick = true,
                "--nodes" => out.nodes = Some(value(&mut it, "--nodes")),
                "--ppn" => out.ppn = Some(value(&mut it, "--ppn")),
                "--iters" => out.iters = Some(value(&mut it, "--iters")),
                "--threads" => out.threads = Some(value(&mut it, "--threads")),
                "--help" | "-h" => {
                    eprintln!(
                        "options: --full | --quick | --nodes N | --ppn N | --iters N | --threads N"
                    );
                    std::process::exit(0);
                }
                other => die(&format!("unknown argument '{other}'")),
            }
        }
        if out.full && out.quick {
            die("--full and --quick are exclusive");
        }
        if out.nodes == Some(0) || out.ppn == Some(0) || out.iters == Some(0) {
            die("--nodes/--ppn/--iters must be positive");
        }
        if out.threads == Some(0) {
            die("--threads must be positive");
        }
        out
    }

    /// Engine worker threads for the scale benches: `--threads` wins,
    /// then the `SIMNET_THREADS` environment knob, then a fixed default
    /// of 2 so committed baselines don't depend on the machine.
    pub fn pick_threads(&self) -> usize {
        self.threads
            .or_else(|| {
                std::env::var(simnet::SIMNET_THREADS_ENV)
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
            })
            .filter(|&t| t >= 1)
            .unwrap_or(2)
    }

    /// Pick a processes-per-node value: the paper's value under `--full`,
    /// a reduced default otherwise, always honouring `--ppn`.
    pub fn pick_ppn(&self, paper: usize, reduced: usize, quick: usize) -> usize {
        self.ppn.unwrap_or(if self.full {
            paper
        } else if self.quick {
            quick
        } else {
            reduced
        })
    }

    /// Pick an iteration count.
    pub fn pick_iters(&self, normal: u32, quick: u32) -> u32 {
        self.iters
            .unwrap_or(if self.quick { quick } else { normal })
    }
}

/// Directory receiving machine-readable benchmark artifacts
/// (`<bench>.metrics.json` files). `BENCH_OUT_DIR` overrides the
/// default `bench_results/` at the workspace root; `BENCH_RESULTS_DIR`
/// is honoured as a fallback for older scripts.
pub fn bench_results_dir() -> std::path::PathBuf {
    match std::env::var_os("BENCH_OUT_DIR").or_else(|| std::env::var_os("BENCH_RESULTS_DIR")) {
        Some(d) => d.into(),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results"),
    }
}

/// Write a metrics report as `bench_results/<name>.metrics.json`
/// (schema `bluefield-offload/metrics/v1`). Benchmarks keep running if
/// the filesystem refuses; the table on stdout is still the primary
/// output.
pub fn write_metrics(name: &str, report: &offload::MetricsReport) {
    let dir = bench_results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("metrics: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.metrics.json"));
    match std::fs::write(&path, report.to_json(name)) {
        Ok(()) => eprintln!("metrics: wrote {}", path.display()),
        Err(e) => eprintln!("metrics: failed to write {}: {e}", path.display()),
    }
}

/// One numeric extension section appended to a metrics/v1 document:
/// `(section name, [(key, rendered number)])`. The schema validator
/// accepts `"engine"` and `"scale"` sections whose members are all
/// numbers; `cargo xtask bench-diff` flattens them like any counter.
pub type MetricsSection = (&'static str, Vec<(String, String)>);

/// Render a metrics report with extra numeric sections spliced in ahead
/// of the closing brace. Rendering stays deterministic: sections and
/// keys keep their given order.
pub fn render_metrics_with(
    report: &offload::MetricsReport,
    name: &str,
    sections: &[MetricsSection],
) -> String {
    let doc = report.to_json(name);
    if sections.is_empty() {
        return doc;
    }
    let base = doc
        .strip_suffix("\n}\n")
        .expect("metrics/v1 documents end with a bare closing brace");
    let mut o = String::from(base);
    for (section, keys) in sections {
        o.push_str(&format!(",\n  \"{section}\": {{"));
        for (i, (k, v)) in keys.iter().enumerate() {
            let sep = if i + 1 == keys.len() { "" } else { "," };
            o.push_str(&format!("\n    \"{k}\": {v}{sep}"));
        }
        o.push_str("\n  }");
    }
    o.push_str("\n}\n");
    o
}

/// Like [`write_metrics`], with extension sections.
pub fn write_metrics_with(
    name: &str,
    report: &offload::MetricsReport,
    sections: &[MetricsSection],
) {
    let dir = bench_results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("metrics: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.metrics.json"));
    match std::fs::write(&path, render_metrics_with(report, name, sections)) {
        Ok(()) => eprintln!("metrics: wrote {}", path.display()),
        Err(e) => eprintln!("metrics: failed to write {}: {e}", path.display()),
    }
}

/// Whether wall-clock members (`wall_ms`, `events_per_sec`, `speedup`,
/// `threads`) go into engine sections. `BENCH_NO_WALL=1` omits them so
/// two runs of the same spec — e.g. `SIMNET_THREADS=1` vs `=4` in the
/// CI equivalence step — produce byte-identical documents.
pub fn wall_enabled() -> bool {
    std::env::var_os("BENCH_NO_WALL").is_none()
}

/// Start a wall-clock timer; the returned closure yields elapsed
/// milliseconds. Host time is confined to the engine self-benchmark
/// numbers (the `wall_ms` band in bench-diff) and never feeds back into
/// simulated time, which is why the lint waiver below is sound.
pub fn wall_timer() -> impl FnOnce() -> f64 {
    let t0 = std::time::Instant::now(); // lint:allow(wall-clock)
    move || t0.elapsed().as_secs_f64() * 1e3
}

/// Whether continuous self-profiling is armed (`BENCH_PROFILE=1`):
/// benches re-run with the span profiler + telemetry bus attached and
/// emit `profile/v1` artifacts. Off by default — profiling must cost
/// nothing unless asked for.
pub fn profile_enabled() -> bool {
    std::env::var(offload::profile::BENCH_PROFILE_ENV).is_ok_and(|v| v == "1")
}

/// Telemetry snapshot interval in picoseconds of virtual time
/// (`BENCH_TELEMETRY_PS` overrides; default 1 µs — a handful of
/// windows even on the `--quick` specs).
pub fn telemetry_interval_ps() -> u64 {
    std::env::var("BENCH_TELEMETRY_PS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(1_000_000)
}

/// Directory receiving `profile/v1` artifacts (`<name>.profile.json`
/// plus the flamegraph-ready `<name>.collapsed.txt`). `BENCH_PROFILE_DIR`
/// overrides the default `target/profile/` at the workspace root.
pub fn profile_out_dir() -> std::path::PathBuf {
    match std::env::var_os("BENCH_PROFILE_DIR") {
        Some(d) => d.into(),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/profile"),
    }
}

/// Write one `profile/v1` document and its collapsed-stack sibling into
/// [`profile_out_dir`]. Like the metrics writers, filesystem refusal is
/// non-fatal.
pub fn write_profile(name: &str, doc_json: &str, collapsed: &str) {
    let dir = profile_out_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("profile: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.profile.json"));
    match std::fs::write(&path, doc_json) {
        Ok(()) => eprintln!("profile: wrote {}", path.display()),
        Err(e) => eprintln!("profile: failed to write {}: {e}", path.display()),
    }
    let path = dir.join(format!("{name}.collapsed.txt"));
    if let Err(e) = std::fs::write(&path, collapsed) {
        eprintln!("profile: failed to write {}: {e}", path.display());
    }
}

/// Render a float with fixed three-decimal precision (deterministic).
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.3}")
}

/// The `"scale"` section of a scale-bench artifact: the spec and the
/// run's deterministic observables. Everything here is exact-compared
/// by bench-diff.
pub fn scale_section(spec: &workloads::ScaleSpec, run: &workloads::ScaleRun) -> MetricsSection {
    (
        "scale",
        vec![
            ("ranks".into(), spec.ranks().to_string()),
            ("nodes".into(), spec.nodes.to_string()),
            ("ppn".into(), spec.ppn.to_string()),
            ("iters".into(), spec.iters.to_string()),
            ("seed".into(), spec.seed.to_string()),
            ("fingerprint".into(), run.fingerprint.to_string()),
            ("virtual_ns".into(), run.virtual_ns.to_string()),
        ],
    )
}

/// The `"engine"` section of a scale-bench artifact: the engine's
/// deterministic counters, plus — unless [`wall_enabled`] is off — the
/// self-benchmark numbers bench-diff holds to the wall tolerance band.
pub fn engine_section(run: &workloads::ScaleRun, threads: usize, wall_ms: f64) -> MetricsSection {
    let mut keys = vec![
        ("events".into(), run.events.to_string()),
        ("shards".into(), run.shards.to_string()),
        ("windows".into(), run.windows.to_string()),
        ("xshard_events".into(), run.xshard_events.to_string()),
    ];
    if wall_enabled() {
        keys.push(("threads".into(), threads.to_string()));
        keys.push(("wall_ms".into(), fmt_f64(wall_ms)));
        keys.push((
            "events_per_sec".into(),
            fmt_f64(run.events as f64 / (wall_ms / 1e3).max(1e-9)),
        ));
    }
    ("engine", keys)
}

/// Artifact name for a scale bench: the bare name under `--quick` (the
/// committed baseline CI regenerates and diffs), a rank-suffixed name
/// otherwise (committed once as scale evidence; old-only files are a
/// non-fatal bench-diff note).
pub fn scale_artifact_name(base: &str, args: &Args, ranks: usize) -> String {
    if args.quick {
        base.to_string()
    } else {
        format!("{base}_{ranks}r")
    }
}

/// Run a figure body with a [`offload::Metrics`] observer installed (via
/// [`workloads::with_metrics`]) and persist the folded report under
/// `name`. Figures whose sweeps never start an offload engine still emit
/// a schema-valid all-zero document, so CI can validate every binary
/// uniformly.
pub fn run_with_metrics(name: &str, f: impl FnOnce()) {
    let ((), report) = workloads::with_metrics(f);
    write_metrics(name, &report);
}

/// Run a figure body with the full observability stack: aggregate
/// metrics (always persisted, as in [`run_with_metrics`]) plus a causal
/// lifecycle trace ([`obs::LifecycleRecorder`]) fed from the same event
/// stream via [`workloads::fanout`]. The lifecycle document
/// (`<name>.lifecycle.json`, schema `bluefield-offload/lifecycle/v1`)
/// is written only when `BENCH_LIFECYCLE` is set — it is per-transfer
/// data, much bigger than the metrics totals, and not a committed
/// baseline.
/// With `BENCH_PROFILE=1` the run additionally arms the hot-path span
/// profiler and attaches a telemetry bus to the same fanned-out event
/// stream, then writes `<name>.profile.json` (+ collapsed stack) under
/// [`profile_out_dir`].
pub fn run_with_observability(name: &str, f: impl FnOnce()) {
    let metrics = offload::Metrics::new();
    let lifecycle = obs::LifecycleRecorder::new();
    let mut sinks = vec![metrics.sink(), lifecycle.sink()];
    let bus = profile_enabled().then(|| {
        offload::profile::set_enabled(true);
        let bus = obs::TelemetryBus::new(telemetry_interval_ps());
        sinks.push(bus.sink());
        bus
    });
    let observer = workloads::Observer {
        sink: Some(workloads::fanout(sinks)),
        trace: false,
    };
    workloads::with_observer(observer, f);
    write_metrics(name, &metrics.report());
    if let Some(bus) = bus {
        offload::profile::set_enabled(false);
        let report = offload::profile::take_report();
        let (_, snaps) = bus.finish();
        let doc = obs::render_profile(&obs::ProfileDoc {
            bench: name,
            report: &report,
            engine: None,
            snapshots: &snaps,
            wall: wall_enabled(),
        });
        write_profile(name, &doc, &report.collapsed_stack());
    }
    if std::env::var_os("BENCH_LIFECYCLE").is_some() {
        let dir = bench_results_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("lifecycle: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.lifecycle.json"));
        match std::fs::write(&path, lifecycle.report().to_json().render()) {
            Ok(()) => eprintln!("lifecycle: wrote {}", path.display()),
            Err(e) => eprintln!("lifecycle: failed to write {}: {e}", path.display()),
        }
    }
}

/// Print an aligned table: a title line, a header row, then rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        println!("{}", line.trim_end());
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    fmt_row(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        fmt_row(row);
    }
}

/// Format microseconds with sensible precision.
pub fn us(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:.1}ms", v / 1000.0)
    } else {
        format!("{v:.1}us")
    }
}

/// Format a ratio as a percentage string.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Human-readable byte size.
pub fn bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(12.34), "12.3us");
        assert_eq!(us(123456.0), "123.5ms");
        assert_eq!(bytes(65536), "64KiB");
        assert_eq!(bytes(1 << 21), "2MiB");
        assert_eq!(bytes(12), "12B");
        assert_eq!(pct(99.96), "100.0%");
    }

    #[test]
    fn ppn_picker() {
        let a = Args {
            full: true,
            ..Default::default()
        };
        assert_eq!(a.pick_ppn(32, 16, 4), 32);
        let a = Args::default();
        assert_eq!(a.pick_ppn(32, 16, 4), 16);
        let a = Args {
            quick: true,
            ..Default::default()
        };
        assert_eq!(a.pick_ppn(32, 16, 4), 4);
        let a = Args {
            ppn: Some(8),
            ..Default::default()
        };
        assert_eq!(a.pick_ppn(32, 16, 4), 8);
    }
}
