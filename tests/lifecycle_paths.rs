//! The paper's central residency claim, checked mechanically from the
//! causal event stream (not from aggregate counters):
//!
//! * Once warm (`gen >= 2`), a group overlap window —
//!   `Group_Offload_call` return to `Group_Wait` satisfied — contains
//!   **zero host-resident segments**: every reconstructed span of the
//!   window's critical path lives on the DPU or on the wire.
//! * Every completed basic-primitive transfer and every completed
//!   staging transfer has **at least one host-resident phase** — the
//!   host posts the request and must wake to retire the FIN.
//!
//! All runs are fixed-seed and the simulator is deterministic, so these
//! are exact assertions, not statistics.

use bluefield_offload::apps::{drive_group_stencil, drive_stencil, CheckRun};
use bluefield_offload::dpu::OffloadConfig;
use obs::{LifecycleRecorder, Residence};

fn recorded(run: &mut CheckRun) -> LifecycleRecorder {
    let rec = LifecycleRecorder::new();
    run.sink = Some(rec.sink());
    rec
}

#[test]
fn warm_group_windows_have_zero_host_resident_segments() {
    let mut run = CheckRun::baseline(21);
    let rec = recorded(&mut run);
    drive_group_stencil(&run, 8192, 3).expect("clean run");
    let report = rec.report();

    // One window per rank per generation, all closed by Group_Wait.
    assert_eq!(report.windows.len(), 4 * 3);
    assert!(report.windows.iter().all(|w| w.closed));
    let warm: Vec<_> = report.windows.iter().filter(|w| w.is_warm()).collect();
    assert_eq!(warm.len(), 4 * 2, "generations 2 and 3 are warm");
    for w in &warm {
        assert_eq!(
            w.host_segments(),
            0,
            "warm window (rank {}, req {}, gen {}) has a host-resident \
             segment: {:?}",
            w.rank,
            w.req_id,
            w.gen,
            w.segments
        );
        // The window is real work, not an empty interval: it has a
        // reconstructed path with wire time on it.
        assert!(w.total.as_ps() > 0);
        assert!(
            w.segments.iter().any(|s| s.residence == Residence::Wire),
            "warm window should carry RDMA wire time: {:?}",
            w.segments
        );
    }

    // The run's critical path is one of the recorded windows, and its
    // segment chain accounts for the whole window (host interventions
    // are zero-length markers, so the spans sum to the total).
    let cp = report.critical_path().expect("closed windows exist");
    assert!(report.windows.iter().all(|w| w.total <= cp.total));
    let sum: u64 = cp.segments.iter().map(|s| s.dur.as_ps()).sum();
    assert_eq!(sum, cp.total.as_ps(), "critical path decomposes exactly");
}

#[test]
fn basic_primitive_paths_are_host_resident_at_both_ends() {
    let mut run = CheckRun::baseline(23);
    let rec = recorded(&mut run);
    drive_stencil(&run, 4096, 2).expect("clean run");
    let report = rec.report();

    let completed: Vec<_> = report.timelines.iter().filter(|t| t.completed).collect();
    assert!(!completed.is_empty(), "stencil completes transfers");
    for t in &completed {
        assert!(
            t.host_segments() >= 1,
            "basic transfer {:#x} ({:?}) shows no host-resident phase: {:?}",
            t.msg_id,
            t.dir,
            t.phases
        );
    }
    // Send-side transfers additionally carry wire time.
    assert!(completed.iter().any(|t| t
        .phases
        .iter()
        .any(|(p, _)| p.residence() == Residence::Wire)));
    // No group windows in a basic-primitive run.
    assert!(report.windows.is_empty());
}

#[test]
fn staging_paths_are_host_resident_at_both_ends() {
    let mut run = CheckRun::baseline(24);
    run.cfg = OffloadConfig::staging();
    let rec = recorded(&mut run);
    drive_stencil(&run, 4096, 2).expect("clean run");
    let report = rec.report();

    let completed: Vec<_> = report.timelines.iter().filter(|t| t.completed).collect();
    assert!(!completed.is_empty(), "staging stencil completes transfers");
    for t in &completed {
        assert!(
            t.host_segments() >= 1,
            "staging transfer {:#x} shows no host-resident phase: {:?}",
            t.msg_id,
            t.phases
        );
    }
}

#[test]
fn lifecycle_report_renders_valid_schema() {
    let mut run = CheckRun::baseline(21);
    let rec = recorded(&mut run);
    drive_group_stencil(&run, 4096, 2).expect("clean run");
    let doc = rec.report().to_json().render();
    let parsed = obs::parse(&doc).expect("lifecycle JSON parses");
    assert_eq!(
        parsed.get("schema").and_then(|s| s.as_str()),
        Some(obs::LIFECYCLE_SCHEMA_ID)
    );
    let windows = parsed
        .get("windows")
        .and_then(|w| w.as_arr())
        .expect("windows array");
    assert_eq!(windows.len(), 4 * 2);
    for w in windows {
        if w.get("warm") == Some(&obs::Json::Bool(true)) {
            assert_eq!(w.get("host_segments").and_then(|n| n.as_u64()), Some(0));
        }
    }
}
