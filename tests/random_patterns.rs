//! Property-based tests: arbitrary communication graphs executed through
//! the Group primitives (on both data paths) deliver exactly the payloads
//! a reference interpretation predicts.

use bluefield_offload::dpu::{DataPath, Offload, OffloadConfig};
use bluefield_offload::net::{ClusterBuilder, ClusterSpec, Inbox};
use proptest::prelude::*;

/// One randomly generated edge of a communication graph.
#[derive(Clone, Debug)]
struct Edge {
    src: usize,
    dst: usize,
    len: u64,
}

fn edges_strategy(ranks: usize, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..ranks, 0..ranks, 64u64..32_768), 1..=max_edges)
        .prop_map(|v| {
            v.into_iter()
                .filter(|(s, d, _)| s != d)
                .map(|(src, dst, len)| Edge { src, dst, len })
                .collect::<Vec<Edge>>()
        })
        .prop_filter("need at least one edge", |v| !v.is_empty())
}

/// Execute `edges` as one group request per rank; every edge uses its own
/// buffers and a unique tag, so the graph needs no barriers. Verify every
/// payload lands intact.
fn execute_graph(edges: Vec<Edge>, ranks: usize, path: DataPath) {
    let cfg = match path {
        DataPath::Gvmi => OffloadConfig::proposed(),
        DataPath::Staging => OffloadConfig::staging(),
    };
    let proxy_cfg = cfg.clone();
    let edges = std::sync::Arc::new(edges);
    let spec = ClusterSpec::new(2, ranks.div_ceil(2));
    ClusterBuilder::new(spec, 1234)
        .run(
            move |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(rank, ctx, cluster.clone(), &inbox, cfg.clone());
                let fab = cluster.fabric().clone();
                let ep = cluster.host_ep(rank);
                // Rank indices above `ranks` idle (world is padded to fill
                // nodes evenly).
                let mut sends = Vec::new();
                let mut recvs = Vec::new();
                for (tag, e) in edges.iter().enumerate() {
                    if e.src == rank {
                        let buf = fab.alloc(ep, e.len);
                        fab.fill_pattern(ep, buf, e.len, tag as u64 * 31 + 7)
                            .unwrap();
                        sends.push((tag as u64, buf, e.len, e.dst));
                    }
                    if e.dst == rank {
                        let buf = fab.alloc(ep, e.len);
                        recvs.push((tag as u64, buf, e.len, e.src));
                    }
                }
                if !sends.is_empty() || !recvs.is_empty() {
                    let g = off.group_start();
                    for &(tag, buf, len, dst) in &sends {
                        off.group_send(g, buf, len, dst, tag);
                    }
                    for &(tag, buf, len, src) in &recvs {
                        off.group_recv(g, buf, len, src, tag);
                    }
                    off.group_end(g);
                    off.group_call(g);
                    off.group_wait(g);
                }
                for &(tag, buf, len, _src) in &recvs {
                    assert!(
                        fab.verify_pattern(ep, buf, len, tag * 31 + 7).unwrap(),
                        "edge {tag} payload corrupt at rank {rank} ({path:?})"
                    );
                }
                off.finalize();
            },
            Some(offload::proxy_fn(proxy_cfg)),
        )
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_graphs_deliver_correctly_gvmi(edges in edges_strategy(4, 10)) {
        execute_graph(edges, 4, DataPath::Gvmi);
    }

    #[test]
    fn random_graphs_deliver_correctly_staging(edges in edges_strategy(4, 8)) {
        execute_graph(edges, 4, DataPath::Staging);
    }

    #[test]
    fn random_forwarding_chains_respect_barriers(
        chain in prop::collection::vec(0..4usize, 2..5),
        len in 1024u64..16_384,
    ) {
        // Deduplicate consecutive repeats to get a valid path.
        let mut path_ranks = vec![chain[0]];
        for &r in &chain[1..] {
            if r != *path_ranks.last().expect("nonempty") {
                path_ranks.push(r);
            }
        }
        if path_ranks.len() < 2 {
            return Ok(());
        }
        // Forward one buffer along the path with Local_barrier ordering;
        // the last rank must see the origin's pattern.
        let path = std::sync::Arc::new(path_ranks);
        let spec = ClusterSpec::new(2, 2);
        ClusterBuilder::new(spec, 9)
            .run(
                move |rank, ctx, cluster| {
                    let inbox = Inbox::new();
                    let off = Offload::init(
                        rank, ctx, cluster.clone(), &inbox, OffloadConfig::proposed(),
                    );
                    let fab = cluster.fabric().clone();
                    let ep = cluster.host_ep(rank);
                    let buf = fab.alloc(ep, len);
                    if rank == path[0] {
                        fab.fill_pattern(ep, buf, len, 555).unwrap();
                    } else {
                        fab.fill_pattern(ep, buf, len, 66).unwrap(); // stale bytes
                    }
                    let g = off.group_start();
                    let mut used = false;
                    for w in path.windows(2) {
                        let (s, d) = (w[0], w[1]);
                        let tag = 900 + used as u64; // distinct per hop pair below
                        let _ = tag;
                        if rank == d {
                            off.group_recv(g, buf, len, s, 900);
                            off.group_barrier(g);
                            used = true;
                        }
                        if rank == s {
                            off.group_send(g, buf, len, d, 900);
                            used = true;
                        }
                    }
                    off.group_end(g);
                    if used {
                        off.group_call(g);
                        off.group_wait(g);
                        if rank == *path.last().expect("nonempty") {
                            assert!(
                                fab.verify_pattern(ep, buf, len, 555).unwrap(),
                                "chain end must hold the origin's data"
                            );
                        }
                    }
                    off.finalize();
                },
                Some(offload::proxy_fn(OffloadConfig::proposed())),
            )
            .unwrap();
    }
}
