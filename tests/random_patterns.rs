//! Property-based tests: arbitrary communication graphs executed through
//! the Group primitives (on both data paths) deliver exactly the payloads
//! a reference interpretation predicts, and the metrics layer's
//! conservation laws hold on every run — bytes delivered equal bytes
//! requested, cache lookups decompose into hits + misses + stale, and
//! FIN counts equal matched-pair counts.

use bluefield_offload::dpu::{DataPath, Metrics, MetricsReport, Offload, OffloadConfig};
use bluefield_offload::net::{ClusterBuilder, ClusterSpec, Inbox};
use proptest::prelude::*;

/// One randomly generated edge of a communication graph.
#[derive(Clone, Debug)]
struct Edge {
    src: usize,
    dst: usize,
    len: u64,
}

fn edges_strategy(ranks: usize, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..ranks, 0..ranks, 64u64..32_768), 1..=max_edges)
        .prop_map(|v| {
            v.into_iter()
                .filter(|(s, d, _)| s != d)
                .map(|(src, dst, len)| Edge { src, dst, len })
                .collect::<Vec<Edge>>()
        })
        .prop_filter("need at least one edge", |v| !v.is_empty())
}

/// Like [`edges_strategy`] but lengths include zero and odd, unaligned
/// sizes — the engine must move (or skip) them without misaccounting.
fn edges_strategy_with_zero(ranks: usize, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..ranks, 0..ranks, 0u64..8192), 1..=max_edges)
        .prop_map(|v| {
            v.into_iter()
                .filter(|(s, d, _)| s != d)
                .map(|(src, dst, len)| Edge { src, dst, len })
                .collect::<Vec<Edge>>()
        })
        .prop_filter("need at least one edge", |v| !v.is_empty())
}

/// Conservation laws every observed run must satisfy, whatever the
/// pattern: registration-cache lookups decompose exactly, registrations
/// performed equal lookups not served from cache, and posted work all
/// completes.
fn assert_conservation(r: &MetricsReport) {
    for (name, c) in [
        ("host_gvmi", r.host_gvmi_cache),
        ("host_ib", r.host_ib_cache),
        ("dpu_cross", r.dpu_cross_cache),
    ] {
        assert_eq!(
            c.lookups(),
            c.hits + c.misses + c.stale,
            "{name}: lookups must decompose into hits+misses+stale"
        );
    }
    assert_eq!(
        r.cross_regs,
        r.dpu_cross_cache.misses + r.dpu_cross_cache.stale,
        "a cross-registration happens exactly when the cache cannot serve"
    );
    assert_eq!(
        r.writes_posted, r.writes_completed,
        "every posted work request must complete"
    );
}

/// Execute `edges` as one group request per rank; every edge uses its own
/// buffers and a unique tag, so the graph needs no barriers. Verify every
/// payload lands intact and the byte counters balance.
fn execute_graph(edges: Vec<Edge>, ranks: usize, path: DataPath) {
    let cfg = match path {
        DataPath::Gvmi => OffloadConfig::proposed(),
        DataPath::Staging => OffloadConfig::staging(),
    };
    let proxy_cfg = cfg.clone();
    let total_bytes: u64 = edges.iter().map(|e| e.len).sum();
    let participants = (0..ranks)
        .filter(|&r| edges.iter().any(|e| e.src == r || e.dst == r))
        .count() as u64;
    let metrics = Metrics::new();
    let edges = std::sync::Arc::new(edges);
    let spec = ClusterSpec::new(2, ranks.div_ceil(2));
    ClusterBuilder::new(spec, 1234)
        .with_event_sink(metrics.sink())
        .run(
            move |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(rank, ctx, cluster.clone(), &inbox, cfg.clone());
                let fab = cluster.fabric().clone();
                let ep = cluster.host_ep(rank);
                // Rank indices above `ranks` idle (world is padded to fill
                // nodes evenly).
                let mut sends = Vec::new();
                let mut recvs = Vec::new();
                for (tag, e) in edges.iter().enumerate() {
                    if e.src == rank {
                        let buf = fab.alloc(ep, e.len);
                        fab.fill_pattern(ep, buf, e.len, tag as u64 * 31 + 7)
                            .unwrap();
                        sends.push((tag as u64, buf, e.len, e.dst));
                    }
                    if e.dst == rank {
                        let buf = fab.alloc(ep, e.len);
                        recvs.push((tag as u64, buf, e.len, e.src));
                    }
                }
                if !sends.is_empty() || !recvs.is_empty() {
                    let g = off.group_start();
                    for &(tag, buf, len, dst) in &sends {
                        off.group_send(g, buf, len, dst, tag);
                    }
                    for &(tag, buf, len, src) in &recvs {
                        off.group_recv(g, buf, len, src, tag);
                    }
                    off.group_end(g);
                    off.group_call(g);
                    off.group_wait(g).expect("group offload failed");
                }
                for &(tag, buf, len, _src) in &recvs {
                    assert!(
                        fab.verify_pattern(ep, buf, len, tag * 31 + 7).unwrap(),
                        "edge {tag} payload corrupt at rank {rank} ({path:?})"
                    );
                }
                off.finalize();
            },
            Some(offload::proxy_fn(proxy_cfg)),
        )
        .unwrap();
    let r = metrics.report();
    assert_conservation(&r);
    assert_eq!(
        r.delivered_bytes(),
        total_bytes,
        "bytes received must equal bytes sent across the whole graph"
    );
    match path {
        DataPath::Gvmi => assert_eq!(r.bytes_staging_hop1 + r.bytes_staging_hop2, 0),
        DataPath::Staging => {
            assert_eq!(r.bytes_cross_gvmi, 0);
            assert_eq!(
                r.bytes_staging_hop1, r.bytes_staging_hop2,
                "staged bytes in must equal staged bytes forwarded"
            );
        }
    }
    // One GroupFin closes each participating rank's single call.
    assert_eq!(r.fin_group, participants);
    assert_eq!(r.finalized_ranks as usize, ranks.div_ceil(2) * 2);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_graphs_deliver_correctly_gvmi(edges in edges_strategy(4, 10)) {
        execute_graph(edges, 4, DataPath::Gvmi);
    }

    #[test]
    fn random_graphs_deliver_correctly_staging(edges in edges_strategy(4, 8)) {
        execute_graph(edges, 4, DataPath::Staging);
    }

    #[test]
    fn basic_transfers_conserve_fin_and_bytes(edges in edges_strategy_with_zero(4, 8)) {
        // The same graphs through the Basic primitives: every transfer is
        // an individually FIN-notified RTS/RTR pair, so FIN counts must
        // equal the matched-pair count exactly.
        let n = edges.len() as u64;
        let total: u64 = edges.iter().map(|e| e.len).sum();
        let metrics = Metrics::new();
        let edges = std::sync::Arc::new(edges);
        ClusterBuilder::new(ClusterSpec::new(2, 2), 777)
            .with_event_sink(metrics.sink())
            .run(
                move |rank, ctx, cluster| {
                    let inbox = Inbox::new();
                    let off = Offload::init(
                        rank, ctx, cluster.clone(), &inbox, OffloadConfig::proposed(),
                    );
                    let fab = cluster.fabric().clone();
                    let ep = cluster.host_ep(rank);
                    let mut reqs = Vec::new();
                    for (tag, e) in edges.iter().enumerate() {
                        if e.src == rank {
                            let buf = fab.alloc(ep, e.len);
                            reqs.push(off.send_offload(buf, e.len, e.dst, tag as u64));
                        }
                        if e.dst == rank {
                            let buf = fab.alloc(ep, e.len);
                            reqs.push(off.recv_offload(buf, e.len, e.src, tag as u64));
                        }
                    }
                    off.wait_all(&reqs);
                    off.finalize();
                },
                Some(offload::proxy_fn(OffloadConfig::proposed())),
            )
            .unwrap();
        let r = metrics.report();
        assert_conservation(&r);
        assert_eq!(r.rts, n);
        assert_eq!(r.rtr, n);
        assert_eq!(r.pairs_matched, n, "every RTS must meet its RTR");
        assert_eq!(r.fin_send, n, "one FinSend per matched pair");
        assert_eq!(r.fin_recv, n, "one FinRecv per matched pair");
        assert_eq!(r.delivered_bytes(), total);
    }

    #[test]
    fn random_forwarding_chains_respect_barriers(
        chain in prop::collection::vec(0..4usize, 2..5),
        len in 1024u64..16_384,
    ) {
        // Deduplicate consecutive repeats to get a valid path.
        let mut path_ranks = vec![chain[0]];
        for &r in &chain[1..] {
            if r != *path_ranks.last().expect("nonempty") {
                path_ranks.push(r);
            }
        }
        if path_ranks.len() < 2 {
            return Ok(());
        }
        // Forward one buffer along the path with Local_barrier ordering;
        // the last rank must see the origin's pattern.
        let path = std::sync::Arc::new(path_ranks);
        let spec = ClusterSpec::new(2, 2);
        ClusterBuilder::new(spec, 9)
            .run(
                move |rank, ctx, cluster| {
                    let inbox = Inbox::new();
                    let off = Offload::init(
                        rank, ctx, cluster.clone(), &inbox, OffloadConfig::proposed(),
                    );
                    let fab = cluster.fabric().clone();
                    let ep = cluster.host_ep(rank);
                    let buf = fab.alloc(ep, len);
                    if rank == path[0] {
                        fab.fill_pattern(ep, buf, len, 555).unwrap();
                    } else {
                        fab.fill_pattern(ep, buf, len, 66).unwrap(); // stale bytes
                    }
                    let g = off.group_start();
                    let mut used = false;
                    for w in path.windows(2) {
                        let (s, d) = (w[0], w[1]);
                        let tag = 900 + used as u64; // distinct per hop pair below
                        let _ = tag;
                        if rank == d {
                            off.group_recv(g, buf, len, s, 900);
                            off.group_barrier(g);
                            used = true;
                        }
                        if rank == s {
                            off.group_send(g, buf, len, d, 900);
                            used = true;
                        }
                    }
                    off.group_end(g);
                    if used {
                        off.group_call(g);
                        off.group_wait(g).expect("group offload failed");
                        if rank == *path.last().expect("nonempty") {
                            assert!(
                                fab.verify_pattern(ep, buf, len, 555).unwrap(),
                                "chain end must hold the origin's data"
                            );
                        }
                    }
                    off.finalize();
                },
                Some(offload::proxy_fn(OffloadConfig::proposed())),
            )
            .unwrap();
    }
}
