//! The paper's Fig. 1 story, asserted end-to-end: for a dependent ring
//! pattern overlapped with computation,
//!
//! 1. host-MPI progression is gated by the CPU's polling granularity,
//! 2. the staging offload progresses without the CPU but pays the extra
//!    hop,
//! 3. the proposed GVMI offload progresses without the CPU at host-level
//!    transfer speed.

use bluefield_offload::dpu::{DataPath, Offload, OffloadConfig};
use bluefield_offload::mpi::{Mpi, MpiConfig};
use bluefield_offload::net::{ClusterBuilder, ClusterSpec, Inbox};
use bluefield_offload::sim::SimDelta;
use std::sync::{Arc, Mutex};

const RANKS: usize = 4;
const LEN: u64 = 512 * 1024;
const COMPUTE: SimDelta = SimDelta::from_ms(8);
/// Coarse polling, as in an application that rarely calls MPI_Test.
const POLL: SimDelta = SimDelta::from_ms(1);

/// Ring data-arrival time at the last rank (µs) for the MPI case, written
/// exactly like paper Listing 1: poll with `MPI_Test` between compute
/// slices, forward as soon as the receive completes, keep computing.
fn mpi_ring_completion() -> f64 {
    let last_arrival = Arc::new(Mutex::new(0.0f64));
    let la = Arc::clone(&last_arrival);
    ClusterBuilder::new(ClusterSpec::new(RANKS, 1), 2)
        .run_hosts(move |rank, ctx, cluster| {
            let mpi = Mpi::new(rank, ctx.clone(), cluster.clone(), MpiConfig::default());
            let fab = cluster.fabric().clone();
            let ep = cluster.host_ep(rank);
            let buf = fab.alloc(ep, LEN);
            let mut remaining = COMPUTE;
            // Listing-1 poll loop: compute a slice, test, repeat.
            let mut poll_until = |mpi: &Mpi, r: bluefield_offload::mpi::Req| {
                while !mpi.test(r) && remaining > simnet::SimDelta::ZERO {
                    let slice = remaining.min(POLL);
                    ctx.compute(slice);
                    remaining = remaining.saturating_sub(slice);
                }
                mpi.wait(r);
            };
            if rank == 0 {
                fab.fill_pattern(ep, buf, LEN, 1).unwrap();
                let s = mpi.isend(buf, LEN, 1, 0);
                poll_until(&mpi, s);
            } else {
                let r = mpi.irecv(buf, LEN, rank - 1, 0);
                poll_until(&mpi, r);
                if rank == RANKS - 1 {
                    *la.lock().unwrap() = ctx.now().as_us_f64();
                } else {
                    let s = mpi.isend(buf, LEN, rank + 1, 0);
                    poll_until(&mpi, s);
                }
            }
            if remaining > simnet::SimDelta::ZERO {
                ctx.compute(remaining);
            }
            assert!(fab.verify_pattern(ep, buf, LEN, 1).unwrap());
        })
        .unwrap();
    let v = *last_arrival.lock().unwrap();
    v
}

/// Ring completion time for an offloaded group ring.
fn offload_ring_completion(path: DataPath) -> f64 {
    let cfg = match path {
        DataPath::Gvmi => OffloadConfig::proposed(),
        DataPath::Staging => OffloadConfig::staging(),
    };
    let proxy_cfg = cfg.clone();
    let last_arrival = Arc::new(Mutex::new(0.0f64));
    let la = Arc::clone(&last_arrival);
    ClusterBuilder::new(ClusterSpec::new(RANKS, 1), 2)
        .run(
            move |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(rank, ctx, cluster.clone(), &inbox, cfg.clone());
                let fab = cluster.fabric().clone();
                let ep = cluster.host_ep(rank);
                let buf = fab.alloc(ep, LEN);
                if rank == 0 {
                    fab.fill_pattern(ep, buf, LEN, 1).unwrap();
                }
                let g = off.group_start();
                if rank == 0 {
                    off.group_send(g, buf, LEN, 1, 0);
                } else {
                    off.group_recv(g, buf, LEN, rank - 1, 0);
                    if rank != RANKS - 1 {
                        off.group_barrier(g);
                        off.group_send(g, buf, LEN, rank + 1, 0);
                    }
                }
                off.group_end(g);
                off.group_call(g);
                // Observe completion with fine-grained polling so the
                // arrival time is visible (the DPU needs none of this).
                let mut remaining = COMPUTE;
                while !off.group_test(g) && remaining > SimDelta::ZERO {
                    let slice = remaining.min(SimDelta::from_us(20));
                    off.ctx().compute(slice);
                    remaining = remaining.saturating_sub(slice);
                }
                off.group_wait(g).expect("group offload failed");
                if rank == RANKS - 1 {
                    *la.lock().unwrap() = off.ctx().now().as_us_f64();
                }
                if remaining > SimDelta::ZERO {
                    off.ctx().compute(remaining);
                }
                assert!(fab.verify_pattern(ep, buf, LEN, 1).unwrap());
                off.finalize();
            },
            Some(offload::proxy_fn(proxy_cfg)),
        )
        .unwrap();
    let v = *last_arrival.lock().unwrap();
    v
}

#[test]
fn fig1_ordering_holds() {
    let mpi = mpi_ring_completion();
    let staging = offload_ring_completion(DataPath::Staging);
    let gvmi = offload_ring_completion(DataPath::Gvmi);
    // Case 1: every dependent hop stalls for up to one CPU polling slice
    // (1 ms here), so the last arrival accumulates multiple slices.
    assert!(
        mpi > 2_000.0,
        "MPI ring should accumulate polling delays, got {mpi}us"
    );
    // Cases 2/3: the DPU progresses the ring without the CPU; the last
    // rank observes completion after just the transfer chain.
    assert!(
        gvmi < mpi / 4.0,
        "GVMI ring ({gvmi}us) should complete far earlier than MPI ({mpi}us)"
    );
    assert!(
        staging < mpi / 2.0,
        "staging ring ({staging}us) should also beat CPU-driven MPI ({mpi}us)"
    );
    // Case 3 beats case 2: no store-and-forward hop.
    assert!(
        gvmi < staging,
        "GVMI ({gvmi}us) should beat staging ({staging}us)"
    );
}
