//! Mechanically check the paper's overlap and caching claims with the
//! metrics layer:
//!
//! * Group offload (Figs. 12/14): once a group's metadata and caches are
//!   warm, the host CPU is never needed between `Group_Offload_call`
//!   returning and `Group_Wait` completing — zero interventions inside
//!   warm overlap windows.
//! * Basic offload: FIN notices arrive one at a time, so the host *does*
//!   wake with work outstanding — the counter is nonzero. Same on the
//!   staging path, which additionally pays the store-and-forward hop
//!   (hop-1 bytes == hop-2 bytes).
//! * Registration caching (§VII-B, Fig. 5): the second iteration over
//!   the same buffers is served from the GVMI caches.
//! * Malformed control traffic is dropped and counted, never fatal.

use bluefield_offload::apps::{drive_group_stencil, drive_stencil, CheckRun};
use bluefield_offload::dpu::{Metrics, Offload, OffloadConfig};
use bluefield_offload::net::{ClusterBuilder, ClusterSpec, Inbox};

fn observed(run: &mut CheckRun) -> Metrics {
    let m = Metrics::new();
    run.sink = Some(m.sink());
    m
}

#[test]
fn warm_group_windows_need_no_host_intervention() {
    let mut run = CheckRun::baseline(21);
    let m = observed(&mut run);
    drive_group_stencil(&run, 8192, 3).expect("clean run");
    let r = m.report();
    assert_eq!(r.finalized_ranks, 4);
    // One overlap window per rank per generation, all closed by
    // Group_Wait.
    assert_eq!(r.windows.len(), 4 * 3);
    assert!(r.windows.iter().all(|w| w.closed));
    let warm = r.windows.iter().filter(|w| w.gen >= 2).count();
    assert_eq!(warm, 4 * 2, "generations 2 and 3 are warm on every rank");
    assert_eq!(
        r.warm_window_interventions(),
        0,
        "a warm group replay must never wake the host CPU with work \
         outstanding (paper Figs. 12/14): {:?}",
        r.windows
    );
    // Warm calls are doorbells, not packet re-installs.
    assert!(r.group_execs > 0, "generations 2+ must use GroupExec");
}

#[test]
fn second_iteration_hits_the_registration_caches() {
    let mut run = CheckRun::baseline(22);
    let m = observed(&mut run);
    // Two rounds over the same four faces: round 1 populates the host
    // GVMI cache and the DPU cross-registration cache, round 2 reuses.
    drive_stencil(&run, 4096, 2).expect("clean run");
    let r = m.report();
    assert!(
        r.host_gvmi_cache.hits > 0,
        "round 2 must hit the host GVMI cache: {:?}",
        r.host_gvmi_cache
    );
    assert!(
        r.dpu_cross_cache.hits > 0,
        "round 2 must hit the DPU cross-registration cache: {:?}",
        r.dpu_cross_cache
    );
    assert!(r.host_gvmi_cache.hit_rate() > 0.0);
    assert!(r.dpu_cross_cache.hit_rate() > 0.0);
    // Registrations actually performed == misses, not lookups.
    assert_eq!(
        r.cross_regs,
        r.dpu_cross_cache.misses + r.dpu_cross_cache.stale
    );
}

#[test]
fn basic_offload_wakes_the_host_with_work_outstanding() {
    let mut run = CheckRun::baseline(23);
    let m = observed(&mut run);
    drive_stencil(&run, 4096, 2).expect("clean run");
    let r = m.report();
    // Four requests per rank per round complete via individual FIN
    // notices; all but the last find other requests still pending.
    assert!(
        r.host_interventions > 0,
        "basic-primitive completion requires host attention: {r:?}"
    );
    assert_eq!(r.bytes_staging_hop1, 0, "GVMI path must not stage");
    assert!(r.bytes_cross_gvmi > 0);
}

#[test]
fn staging_path_stages_every_byte_and_wakes_the_host() {
    let mut run = CheckRun::baseline(24);
    run.cfg = OffloadConfig::staging();
    let m = observed(&mut run);
    drive_stencil(&run, 4096, 2).expect("clean run");
    let r = m.report();
    assert!(r.host_interventions > 0);
    assert_eq!(r.bytes_cross_gvmi, 0, "staging path must not cross-write");
    assert!(r.bytes_staging_hop1 > 0);
    assert_eq!(
        r.bytes_staging_hop1, r.bytes_staging_hop2,
        "every staged byte is pulled once (hop 1) and forwarded once (hop 2)"
    );
}

#[test]
fn malformed_ctrl_at_proxy_is_counted_not_fatal() {
    let m = Metrics::new();
    let report = ClusterBuilder::new(ClusterSpec::new(2, 1), 33)
        .with_event_sink(m.sink())
        .run(
            |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(
                    rank,
                    ctx.clone(),
                    cluster.clone(),
                    &inbox,
                    OffloadConfig::proposed(),
                );
                let fab = cluster.fabric().clone();
                let ep = cluster.host_ep(rank);
                if rank == 0 {
                    // A foreign payload lands on the proxy's control
                    // channel; the proxy must drop it and keep serving.
                    fab.send_packet(
                        &ctx,
                        ep,
                        cluster.proxy_for_rank(rank),
                        64,
                        Box::new("not a CtrlMsg"),
                    )
                    .expect("inject garbage");
                }
                let buf = fab.alloc(ep, 4096);
                let req = if rank == 0 {
                    off.send_offload(buf, 4096, 1, 7)
                } else {
                    off.recv_offload(buf, 4096, 0, 7)
                };
                off.wait(req);
                off.finalize();
            },
            Some(offload::proxy_fn(OffloadConfig::proposed())),
        )
        .expect("run survives garbage");
    let r = m.report();
    assert_eq!(r.ctrl_dropped_proxy, 1, "the drop must surface in metrics");
    assert_eq!(r.ctrl_dropped_host, 0);
    assert_eq!(report.stats.counter("offload.proxy.bad_ctrl"), 1);
    // The real transfer still completed.
    assert_eq!(r.pairs_matched, 1);
    assert_eq!(r.finalized_ranks, 2);
}
