//! Deterministic fixtures for the lifecycle reconstructor and its
//! histograms: a hand-built 4-rank group event DAG with a known longest
//! window, and property tests for the log-scaled histogram (merge
//! associativity, quantile monotonicity, empty/single-bucket edges).

use bluefield_offload::dpu::{FinKind, PathKind, ProtoEvent};
use bluefield_offload::sim::{Pid, SimTime};
use obs::{reconstruct, Histogram, Residence};
use proptest::prelude::*;

/// Pid layout for the fixture: host rank `r` is pid `r`, its proxy is
/// pid `10 + r`.
fn host(r: usize) -> Pid {
    Pid::from_index(r)
}

fn proxy(r: usize) -> Pid {
    Pid::from_index(10 + r)
}

fn at(ps: u64) -> SimTime {
    SimTime::from_ps(ps)
}

/// One rank's warm window: open → write → completion → group FIN →
/// close, with every timestamp chosen by hand.
#[allow(clippy::too_many_arguments)]
fn window(
    ev: &mut Vec<(SimTime, Pid, ProtoEvent)>,
    rank: usize,
    gen: u64,
    t_open: u64,
    t_write: u64,
    t_complete: u64,
    t_fin: u64,
    t_close: u64,
) {
    let wrid = 0x0300_0000_0000_0000 | ((rank as u64) << 8) | gen;
    ev.push((
        at(t_open),
        host(rank),
        ProtoEvent::GroupCallReturned {
            host_rank: rank,
            req_id: 0,
            gen,
        },
    ));
    ev.push((
        at(t_write),
        proxy(rank),
        ProtoEvent::WritePosted {
            wrid,
            bytes: 8192,
            path: PathKind::CrossGvmi,
            // A group wire-entry id: owned by `rank`, never posted via
            // HostReqPosted, so reconstruction attributes it to the
            // rank's open window.
            msg_id: ((rank as u64) << 32) | (100 + gen),
        },
    ));
    ev.push((
        at(t_complete),
        proxy(rank),
        ProtoEvent::WriteCompleted { wrid },
    ));
    ev.push((
        at(t_fin),
        proxy(rank),
        ProtoEvent::FinSent {
            rank,
            req: 0,
            wrid: wrid | 0x80,
            kind: FinKind::Group,
            msg_id: 0,
        },
    ));
    ev.push((
        at(t_close),
        host(rank),
        ProtoEvent::GroupWaitDone {
            host_rank: rank,
            req_id: 0,
            gen,
        },
    ));
}

#[test]
fn four_rank_fixture_has_the_known_critical_path() {
    let mut ev = Vec::new();
    // Warm (gen 2) windows on four ranks. Rank 2 is the designed
    // critical path: 13_000 ps end to end, dominated by wire time.
    window(&mut ev, 0, 2, 1_000, 2_000, 9_000, 9_500, 10_000);
    window(&mut ev, 1, 2, 1_000, 3_000, 8_000, 8_400, 9_000);
    window(&mut ev, 2, 2, 2_000, 2_500, 14_000, 14_200, 15_000);
    window(&mut ev, 3, 2, 1_500, 2_000, 6_000, 6_300, 7_000);

    let report = reconstruct(&ev);
    assert_eq!(report.windows.len(), 4);
    assert!(report.windows.iter().all(|w| w.closed && w.is_warm()));
    assert!(report.windows.iter().all(|w| w.host_segments() == 0));

    let cp = report.critical_path().expect("windows closed");
    assert_eq!((cp.rank, cp.req_id, cp.gen), (2, 0, 2));
    assert_eq!(cp.total.as_ps(), 13_000);
    let spans: Vec<(&str, u64)> = cp
        .segments
        .iter()
        .map(|s| (s.label, s.dur.as_ps()))
        .collect();
    assert_eq!(
        spans,
        vec![
            ("dispatch", 500),
            ("wire", 11_500),
            ("dpu_fin", 200),
            ("wait_close", 800),
        ]
    );
    assert_eq!(
        cp.segments
            .iter()
            .find(|s| s.label == "wire")
            .map(|s| s.residence),
        Some(Residence::Wire)
    );
}

#[test]
fn host_intervention_inside_a_window_becomes_a_host_segment() {
    let mut ev = Vec::new();
    window(&mut ev, 0, 1, 1_000, 2_000, 9_000, 9_500, 10_000);
    // The host is woken with work outstanding while the window is open
    // (a cold-path hiccup).
    ev.insert(
        3,
        (
            at(5_000),
            host(0),
            ProtoEvent::HostWakeup {
                rank: 0,
                intervention: true,
            },
        ),
    );
    // A wakeup on another rank, and one after close, must not count.
    ev.push((
        at(5_000),
        host(1),
        ProtoEvent::HostWakeup {
            rank: 1,
            intervention: true,
        },
    ));
    ev.push((
        at(11_000),
        host(0),
        ProtoEvent::HostWakeup {
            rank: 0,
            intervention: true,
        },
    ));

    let report = reconstruct(&ev);
    assert_eq!(report.windows.len(), 1);
    let w = &report.windows[0];
    assert_eq!(w.host_segments(), 1);
    assert!(!w.is_warm());
}

#[test]
fn empty_histogram_reports_zeros() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.p50(), 0);
    assert_eq!(h.p99(), 0);
    assert_eq!(h.quantile(1.0), 0);
}

#[test]
fn single_valued_histogram_collapses_to_that_value() {
    for v in [0u64, 1, 7, 4096, u64::MAX] {
        let mut h = Histogram::new();
        for _ in 0..5 {
            h.record(v);
        }
        assert_eq!(h.p50(), v, "p50 of constant {v}");
        assert_eq!(h.p99(), v, "p99 of constant {v}");
        assert_eq!(h.max(), v);
    }
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_associative_and_matches_union(
        a in prop::collection::vec(0u64..1_000_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000_000, 0..40),
        c in prop::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);
        // Both equal the histogram of the concatenation.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &hist_of(&all));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(0u64..1_000_000_000, 1..60),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let h = hist_of(&values);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
        prop_assert!(h.quantile(1.0) == h.max());
        // Every quantile estimate is within the observed range and
        // never undershoots the true quantile's bucket lower bound:
        // it is at most 2x the true value (log2 buckets).
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let true_p50 = sorted[(sorted.len() - 1) / 2];
        prop_assert!(h.p50() <= h.max());
        prop_assert!(h.p50() >= true_p50 / 2);
    }
}
