//! Cross-engine equivalence: the classic single-threaded event loop
//! and the sharded conservative-lookahead runtime must be mutually
//! indistinguishable for the full protocol stack.
//!
//! [`rdma::ClusterBuilder::with_threads`] routes a cluster through the
//! sharded engine (pinned to one shard — the fabric arbitrates global
//! state, see DESIGN.md §16), so every observable a run produces —
//! metrics JSON, conformance verdict, flight-recorder dump, end time,
//! event count — must be byte-identical at 1, 2, 4 and 8 worker
//! threads, across seeds, workloads and proxy counts, with and without
//! an armed fault plan.

use bluefield_offload::apps::{
    drive_alltoall, drive_group_stencil, drive_stencil, drive_verified_stencil, fanout, CheckRun,
};
use bluefield_offload::dpu::{FaultPlan, FlightRecorder, Metrics, OffloadConfig};
use checker::{Conformance, ConformanceConfig};

/// Everything a run can tell the outside world.
#[derive(PartialEq, Eq)]
struct Artifacts {
    metrics: String,
    violations: Vec<String>,
    flight_dump: String,
    end_ps: String,
    events: u64,
}

fn drive(workload: &str, run: &CheckRun) -> simnet::Report {
    match workload {
        "stencil" => drive_stencil(run, 4096, 2),
        "alltoall" => drive_alltoall(run, 2048, 2),
        "group_stencil" => drive_group_stencil(run, 4096, 2),
        "verified_stencil" => drive_verified_stencil(run, 2048, 2),
        other => panic!("unknown workload {other}"),
    }
    .expect("clean run")
}

fn run_cell(
    workload: &str,
    seed: u64,
    proxies: usize,
    threads: usize,
    fault: FaultPlan,
) -> Artifacts {
    let mut cr = CheckRun::baseline(seed);
    cr.proxies_per_dpu = proxies;
    cr.threads = Some(threads);
    cr.cfg = OffloadConfig::proposed().with_fault(fault);
    cr.move_bytes = workload == "verified_stencil";
    let metrics = Metrics::new();
    let conf = Conformance::new(ConformanceConfig::default());
    let recorder = FlightRecorder::new();
    cr.sink = Some(fanout(vec![metrics.sink(), conf.sink(), recorder.sink()]));
    let report = drive(workload, &cr);
    Artifacts {
        metrics: metrics.report().to_json("equivalence"),
        violations: conf.finish().iter().map(|v| format!("{v:?}")).collect(),
        flight_dump: recorder.dump(),
        end_ps: format!("{:?}", report.end_time),
        events: report.events,
    }
}

fn assert_equivalent(workload: &str, seed: u64, proxies: usize, fault: FaultPlan) {
    let base = run_cell(workload, seed, proxies, 1, fault);
    assert!(
        base.violations.is_empty(),
        "{workload} seed {seed} p{proxies}: classic run violated invariants: {:?}",
        base.violations
    );
    for threads in [2, 4, 8] {
        let sharded = run_cell(workload, seed, proxies, threads, fault);
        let label = format!("{workload} seed {seed} p{proxies} t{threads}");
        assert_eq!(
            base.metrics, sharded.metrics,
            "{label}: metrics JSON must be byte-identical"
        );
        assert_eq!(
            base.violations, sharded.violations,
            "{label}: conformance verdicts must match"
        );
        assert_eq!(
            base.flight_dump, sharded.flight_dump,
            "{label}: flight-recorder dumps must be identical"
        );
        assert_eq!(base.end_ps, sharded.end_ps, "{label}: end time must match");
        assert_eq!(
            base.events, sharded.events,
            "{label}: event count must match"
        );
    }
}

#[test]
fn stencil_matrix_is_engine_invariant() {
    for seed in [3, 19] {
        for proxies in [1, 2] {
            assert_equivalent("stencil", seed, proxies, FaultPlan::none());
        }
    }
}

#[test]
fn alltoall_matrix_is_engine_invariant() {
    for seed in [5, 23] {
        for proxies in [1, 2] {
            assert_equivalent("alltoall", seed, proxies, FaultPlan::none());
        }
    }
}

#[test]
fn group_stencil_matrix_is_engine_invariant() {
    for seed in [7, 31] {
        for proxies in [1, 2] {
            assert_equivalent("group_stencil", seed, proxies, FaultPlan::none());
        }
    }
}

#[test]
fn faulty_runs_are_engine_invariant() {
    // A lossy-but-recoverable ctrl plane with real byte movement: the
    // retransmission machinery, payload CRCs and fault RNG streams must
    // all be thread-count invariant too (the fault-soak matrix runs
    // under SIMNET_THREADS=4 in CI on the strength of this).
    let fault = FaultPlan {
        drop_pm: 40,
        dup_pm: 20,
        delay_pm: 30,
        delay_ns: 2_000,
        seed: 99,
        ..FaultPlan::none()
    };
    assert_equivalent("verified_stencil", 13, 1, fault);
    assert_equivalent("verified_stencil", 13, 2, fault);
}
