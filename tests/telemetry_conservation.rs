//! Telemetry-bus conservation and determinism, end to end through the
//! offload protocol: for any run, the per-counter sum of snapshot
//! deltas published by an [`obs::TelemetryBus`] must equal the final
//! frozen [`Metrics`] totals exactly (no event lost at a window
//! boundary, none double-counted), an external metrics sink fed from
//! the same fan-out must agree, and the full snapshot stream —
//! boundaries, ordering, every delta — must be identical across engine
//! worker thread counts. Swept proptest-style over seeds, proxy
//! fan-outs and thread counts.

use bluefield_offload::apps::{drive_stencil, fanout, CheckRun};
use bluefield_offload::dpu::Metrics;
use obs::{render_profile, validate_profile, ProfileDoc, TelemetryBus, TelemetrySnapshot};
use proptest::prelude::*;

/// Telemetry window width. Small enough that a 4-rank stencil run
/// crosses several boundaries, so conservation is summed over a real
/// multi-snapshot stream rather than a single tail window.
const INTERVAL_PS: u64 = 250_000;

/// One observed stencil run: returns the bus's frozen totals, the
/// published snapshots, and the externally accumulated totals.
#[allow(clippy::type_complexity)]
fn observed_run(
    seed: u64,
    proxies: usize,
    threads: usize,
) -> (
    Vec<(&'static str, u64)>,
    Vec<TelemetrySnapshot>,
    Vec<(&'static str, u64)>,
) {
    let mut run = CheckRun::baseline(seed);
    run.proxies_per_dpu = proxies;
    run.threads = Some(threads);
    let external = Metrics::new();
    let bus = TelemetryBus::new(INTERVAL_PS);
    run.sink = Some(fanout(vec![external.sink(), bus.sink()]));
    drive_stencil(&run, 1024, 2).expect("clean stencil run");
    let (bus_report, snaps) = bus.finish();
    (bus_report.totals(), snaps, external.report().totals())
}

/// Sum of `key` deltas across a snapshot stream.
fn delta_sum(snaps: &[TelemetrySnapshot], key: &str) -> u64 {
    snaps
        .iter()
        .flat_map(|s| s.deltas.iter())
        .filter(|(k, _)| k == key)
        .map(|&(_, v)| v)
        .sum()
}

fn check_conservation(seed: u64, proxies: usize, threads: usize) -> Vec<TelemetrySnapshot> {
    let (bus_totals, snaps, external_totals) = observed_run(seed, proxies, threads);
    assert!(
        snaps.len() >= 2,
        "seed {seed}: expected a multi-snapshot stream, got {}",
        snaps.len()
    );
    let seqs: Vec<u64> = snaps.iter().map(|s| s.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "seed {seed}: seq must be strictly increasing: {seqs:?}"
    );
    assert!(
        snaps.windows(2).all(|w| w[0].upto_ps <= w[1].upto_ps),
        "seed {seed}: window bounds must be monotone"
    );
    for (key, total) in &bus_totals {
        assert_eq!(
            delta_sum(&snaps, key),
            *total,
            "seed {seed} proxies {proxies} threads {threads}: \
             snapshot deltas must sum to the frozen total for {key}"
        );
    }
    assert_eq!(
        bus_totals, external_totals,
        "seed {seed}: the bus's internal accumulator and an external \
         sink on the same fan-out must agree"
    );
    assert!(
        delta_sum(&snaps, "bus_events") > 0,
        "seed {seed}: the bus saw no events at all"
    );
    snaps
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    #[test]
    fn snapshot_deltas_conserve_totals(seed in 1u64..10_000) {
        for proxies in [1usize, 2, 4] {
            check_conservation(seed, proxies, 1);
        }
    }

    #[test]
    fn snapshot_stream_is_thread_count_invariant(seed in 1u64..10_000) {
        // The engine delivers events in canonical order at any worker
        // count, so the entire snapshot stream — not just the sums —
        // must match between the classic and sharded runtimes.
        let t1 = check_conservation(seed, 2, 1);
        let t4 = check_conservation(seed, 2, 4);
        prop_assert_eq!(t1, t4);
    }
}

#[test]
fn snapshot_stream_renders_as_valid_profile_v1() {
    let snaps = check_conservation(99, 1, 1);
    // A profile/v1 document built from the stream (no span scopes: the
    // profiler was not armed here) must pass its own validator in both
    // wall regimes.
    let report = bluefield_offload::dpu::ProfileReport::default();
    for wall in [false, true] {
        let doc = render_profile(&ProfileDoc {
            bench: "telemetry_conservation",
            report: &report,
            engine: None,
            snapshots: &snaps,
            wall,
        });
        validate_profile(&doc).expect("rendered document validates");
    }
}
