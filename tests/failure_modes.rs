//! Negative paths: the simulator must *diagnose* broken communication
//! patterns (deadlocks), not hang; misuse of the APIs must fail loudly.

use bluefield_offload::dpu::{Offload, OffloadConfig};
use bluefield_offload::mpi::{Mpi, MpiConfig};
use bluefield_offload::net::{ClusterBuilder, ClusterSpec, Inbox};
use bluefield_offload::sim::SimError;

#[test]
fn unmatched_mpi_recv_reports_deadlock() {
    let spec = ClusterSpec::new(2, 1);
    let result = ClusterBuilder::new(spec, 1).run_hosts(|rank, ctx, cluster| {
        let mpi = Mpi::new(rank, ctx, cluster.clone(), MpiConfig::default());
        let fab = cluster.fabric().clone();
        let ep = cluster.host_ep(rank);
        let buf = fab.alloc(ep, 64);
        if rank == 0 {
            // Nobody ever sends with tag 99.
            mpi.recv(buf, 64, 1, 99);
        }
    });
    match result {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert!(blocked.iter().any(|(name, _)| name == "rank0"));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn unmatched_offload_send_reports_deadlock() {
    let spec = ClusterSpec::new(2, 1);
    let result = ClusterBuilder::new(spec, 1).run(
        |rank, ctx, cluster| {
            let inbox = Inbox::new();
            let off = Offload::init(rank, ctx, cluster, &inbox, OffloadConfig::proposed());
            let fab = off.cluster().fabric().clone();
            let ep = off.cluster().host_ep(rank);
            let buf = fab.alloc(ep, 64);
            if rank == 0 {
                // The matching recv_offload never happens.
                off.wait(off.send_offload(buf, 64, 1, 5));
            }
            off.finalize();
        },
        Some(offload::proxy_fn(OffloadConfig::proposed())),
    );
    assert!(
        matches!(result, Err(SimError::Deadlock { .. })),
        "expected deadlock, got {result:?}"
    );
}

#[test]
fn mismatched_ring_barrier_pattern_deadlocks_not_hangs() {
    // A ring where one rank forgot to forward: downstream ranks block in
    // group_wait; the engine reports exactly who is stuck.
    let spec = ClusterSpec::new(3, 1);
    let result = ClusterBuilder::new(spec, 1).run(
        |rank, ctx, cluster| {
            let inbox = Inbox::new();
            let off = Offload::init(
                rank,
                ctx,
                cluster.clone(),
                &inbox,
                OffloadConfig::proposed(),
            );
            let fab = cluster.fabric().clone();
            let ep = cluster.host_ep(rank);
            let buf = fab.alloc(ep, 1024);
            let g = off.group_start();
            match rank {
                0 => off.group_send(g, buf, 1024, 1, 0),
                1 => {
                    off.group_recv(g, buf, 1024, 0, 0);
                    // BUG under test: rank 1 does not forward to rank 2.
                }
                _ => off.group_recv(g, buf, 1024, 1, 0),
            }
            off.group_end(g);
            off.group_call(g);
            off.group_wait(g).expect("group offload failed");
            off.finalize();
        },
        Some(offload::proxy_fn(OffloadConfig::proposed())),
    );
    match result {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert!(blocked.iter().any(|(name, _)| name == "rank2"));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn bad_destination_rank_panics() {
    let spec = ClusterSpec::new(2, 1);
    let result = std::panic::catch_unwind(|| {
        let _ = ClusterBuilder::new(spec, 1).run(
            |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(
                    rank,
                    ctx,
                    cluster.clone(),
                    &inbox,
                    OffloadConfig::proposed(),
                );
                let fab = cluster.fabric().clone();
                let ep = cluster.host_ep(rank);
                let buf = fab.alloc(ep, 64);
                if rank == 0 {
                    let _ = off.send_offload(buf, 64, 99, 0); // rank 99 does not exist
                }
                off.finalize();
            },
            Some(offload::proxy_fn(OffloadConfig::proposed())),
        );
    });
    assert!(result.is_err(), "out-of-range destination must panic");
}

#[test]
fn dark_ctrl_plane_surfaces_ctrl_undeliverable() {
    use offload::FaultPlan;
    use workloads::{drive_ctrl_undeliverable, CheckRun};
    let mut run = CheckRun::baseline(7);
    run.cfg.fault = FaultPlan {
        drop_pm: 1000,
        ..FaultPlan::none()
    };
    // The typed-error assertion runs inside the driver on rank 0. The
    // simulation's own verdict is a deadlock of the *proxies* only: the
    // dark ctrl plane also swallows their shutdown notices. The hosts
    // must all have escaped with the typed error.
    match drive_ctrl_undeliverable(&run, 4096) {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert!(
                blocked.iter().all(|(name, _)| name.starts_with("proxy")),
                "only shutdown-starved proxies may remain blocked, got {blocked:?}"
            );
        }
        other => panic!("expected a proxies-only deadlock verdict, got {other:?}"),
    }
}

#[test]
fn dropped_payloads_surface_data_integrity_on_both_ends() {
    use offload::FaultPlan;
    use workloads::{drive_data_integrity, CheckRun};
    let mut run = CheckRun::baseline(11);
    run.move_bytes = true;
    run.cfg.fault = FaultPlan {
        data_drop_pm: 1000,
        ..FaultPlan::none()
    };
    drive_data_integrity(&run, 4096).expect("run completes after the typed failure");
}

#[test]
fn time_limit_catches_runaway_patterns() {
    let spec = ClusterSpec::new(2, 1);
    let result = ClusterBuilder::new(spec, 1)
        .with_time_limit(simnet::SimTime::ZERO + simnet::SimDelta::from_us(10))
        .run_hosts(|_rank, ctx, _cluster| {
            ctx.compute(simnet::SimDelta::from_ms(100));
        });
    assert!(matches!(result, Err(SimError::TimeLimitExceeded { .. })));
}
