//! Chrome-trace export: a fixed-seed ping-pong's exported timeline is
//! pinned byte-for-byte against a golden snapshot (regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test trace_export`), and the document
//! is structurally valid Trace Event Format that chrome://tracing and
//! Perfetto load directly.

use bluefield_offload::dpu::{Offload, OffloadConfig};
use bluefield_offload::net::{ClusterBuilder, ClusterSpec, Inbox};
use bluefield_offload::sim::Report;
use std::path::PathBuf;

/// One offloaded 4 KiB ping-pong between two single-rank nodes, traced.
/// `threads` picks the engine (1 = classic loop, >1 = sharded runtime)
/// and overrides `SIMNET_THREADS`, so each test states its engine
/// explicitly instead of drifting with the environment.
fn traced_pingpong(seed: u64, threads: usize) -> Report {
    ClusterBuilder::new(ClusterSpec::new(2, 1), seed)
        .with_threads(threads)
        .with_trace()
        .run(
            |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(
                    rank,
                    ctx.clone(),
                    cluster.clone(),
                    &inbox,
                    OffloadConfig::proposed(),
                );
                let fab = cluster.fabric().clone();
                let ep = cluster.host_ep(rank);
                let buf = fab.alloc(ep, 4096);
                ctx.trace(format!("pingpong.start.{rank}"));
                let peer = 1 - rank;
                let reqs = [
                    off.send_offload(buf, 4096, peer, 1),
                    off.recv_offload(buf, 4096, peer, 1),
                ];
                // Overlap a compute slice so the exported timeline shows
                // the paper's compute/communication picture.
                ctx.compute(bluefield_offload::sim::SimDelta::from_us(10));
                off.wait_all(&reqs);
                ctx.trace(format!("pingpong.done.{rank}"));
                off.finalize();
            },
            Some(offload::proxy_fn(OffloadConfig::proposed())),
        )
        .expect("pingpong run")
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/pingpong_trace.json")
}

#[test]
fn chrome_trace_matches_golden_snapshot() {
    // The golden byte-compare is pinned to the classic single-threaded
    // engine: the snapshot documents *that* engine's timeline, and the
    // sharded runtime's agreement with it is asserted separately by
    // `chrome_trace_is_thread_count_invariant` (so a divergence shows up
    // as an engine bug, not a stale fixture).
    let doc = obs::chrome_trace(&traced_pingpong(7, 1)).expect("tracing enabled");
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent dir")).expect("mkdir golden");
        std::fs::write(&path, &doc).expect("write golden");
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test trace_export",
            path.display()
        )
    });
    assert_eq!(
        doc, golden,
        "exported trace drifted from the golden snapshot; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_trace_is_well_formed() {
    let report = traced_pingpong(8, 1);
    let doc = obs::chrome_trace(&report).expect("tracing enabled");
    let v = obs::parse(&doc).expect("valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(obs::Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(v.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
    let phase = |e: &obs::Json| e.get("ph").unwrap().as_str().unwrap().to_string();
    // One thread-name metadata record per simulated process.
    let names = events.iter().filter(|e| phase(e) == "M").count();
    assert_eq!(names, report.procs.len());
    // Compute slices exported as complete spans with sane geometry.
    let spans: Vec<_> = events.iter().filter(|e| phase(e) == "X").collect();
    assert!(!spans.is_empty(), "offload run must produce compute spans");
    for s in &spans {
        assert!(s.get("ts").unwrap().as_num().unwrap() >= 0.0);
        assert!(s.get("dur").unwrap().as_num().unwrap() >= 0.0);
        assert!(s.get("name").is_some() && s.get("cat").is_some());
    }
    // The explicit ctx.trace marks arrive as thread-scoped instants.
    let instants: Vec<String> = events
        .iter()
        .filter(|e| phase(e) == "i")
        .map(|e| e.get("name").unwrap().as_str().unwrap().to_string())
        .collect();
    assert!(instants.iter().any(|n| n == "pingpong.start.0"));
    assert!(instants.iter().any(|n| n == "pingpong.done.1"));
}

#[test]
fn same_seed_runs_export_identical_traces() {
    let a = obs::chrome_trace(&traced_pingpong(9, 1)).expect("trace");
    let b = obs::chrome_trace(&traced_pingpong(9, 1)).expect("trace");
    assert_eq!(a, b, "trace export must be deterministic");
}

#[test]
fn chrome_trace_is_thread_count_invariant() {
    // The exported timeline must not betray the engine that produced
    // it: the sharded runtime at 2 and 4 worker threads exports the
    // same bytes as the classic loop.
    let classic = obs::chrome_trace(&traced_pingpong(7, 1)).expect("trace");
    for threads in [2, 4] {
        let sharded = obs::chrome_trace(&traced_pingpong(7, threads)).expect("trace");
        assert_eq!(
            classic, sharded,
            "chrome export differs at {threads} worker threads"
        );
    }
}
