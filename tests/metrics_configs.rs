//! Under-tested configurations, checked through the metrics layer:
//! proxy fan-out (`num_proxies_per_dpu` 1/2/4), zero-byte and unaligned
//! message sizes, and repeated group generations (the §VII-D once-only
//! metadata-exchange claim).

use bluefield_offload::apps::{drive_group_stencil, drive_stencil, CheckRun};
use bluefield_offload::dpu::Metrics;

fn observed(run: &mut CheckRun) -> Metrics {
    let m = Metrics::new();
    run.sink = Some(m.sink());
    m
}

#[test]
fn proxy_fanout_conserves_traffic() {
    let mut delivered = Vec::new();
    for proxies in [1usize, 2, 4] {
        let mut run = CheckRun::baseline(41);
        run.proxies_per_dpu = proxies;
        let m = observed(&mut run);
        drive_stencil(&run, 4096, 2).expect("clean run");
        let r = m.report();
        assert_eq!(r.finalized_ranks, 4, "{proxies} proxies");
        assert_eq!(
            r.writes_posted, r.writes_completed,
            "{proxies} proxies: every posted WR must complete"
        );
        assert_eq!(r.rts, r.rtr, "symmetric exchange");
        assert_eq!(r.pairs_matched, r.rts, "every RTS finds its RTR");
        assert_eq!(r.fin_send, r.pairs_matched);
        assert_eq!(r.fin_recv, r.pairs_matched);
        let active = r.proxies.iter().filter(|p| p.rts + p.rtr > 0).count();
        assert!(
            active >= proxies.min(2),
            "rank->proxy mapping must spread load over {proxies} proxies, \
             only {active} active"
        );
        delivered.push(r.delivered_bytes());
    }
    assert!(
        delivered.iter().all(|&b| b == delivered[0]),
        "payload volume is invariant under proxy fan-out: {delivered:?}"
    );
}

#[test]
fn zero_byte_and_unaligned_sizes_complete() {
    for size in [0u64, 1, 3, 1023, 4097] {
        let mut run = CheckRun::baseline(42);
        let m = observed(&mut run);
        drive_stencil(&run, size, 1).expect("clean run");
        let r = m.report();
        assert_eq!(r.finalized_ranks, 4, "size {size}");
        assert_eq!(r.writes_posted, r.writes_completed, "size {size}");
        assert_eq!(
            r.delivered_bytes(),
            r.pairs_matched * size,
            "size {size}: each matched pair moves exactly its length"
        );
        // 4 ranks x 2 sends each, all matched even at zero length.
        assert_eq!(r.pairs_matched, 8, "size {size}");

        let mut run = CheckRun::baseline(43);
        let m = observed(&mut run);
        drive_group_stencil(&run, size, 2).expect("clean group run");
        let r = m.report();
        assert_eq!(r.finalized_ranks, 4, "group size {size}");
        assert_eq!(r.writes_posted, r.writes_completed, "group size {size}");
        assert_eq!(r.warm_window_interventions(), 0, "group size {size}");
    }
}

#[test]
fn repeated_generations_exchange_metadata_once() {
    let mut run = CheckRun::baseline(44);
    let m = observed(&mut run);
    drive_group_stencil(&run, 2048, 5).expect("clean run");
    let r = m.report();
    assert!(r.recv_meta_total > 0, "the cold call must gather RecvMeta");
    assert_eq!(
        r.recv_meta_max_per_pair, 1,
        "metadata for a (request, rank) pair is exchanged exactly once \
         across 5 generations (§VII-D): {:?}",
        r.recv_meta
    );
    assert_eq!(
        r.group_packets_max_per_req, 1,
        "the full GroupPacket ships only on the cold call"
    );
    // 5 calls per rank: 1 cold install + 4 warm doorbells.
    assert_eq!(r.group_packets_total, 4);
    assert_eq!(r.group_execs, 4 * 4);
}
