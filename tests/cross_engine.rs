//! Cross-engine integrity: the same communication pattern, executed by
//! host MPI, the staging offload and the GVMI offload, must deliver
//! byte-identical results.

use bluefield_offload::dpu::{Offload, OffloadConfig};
use bluefield_offload::mpi::{Mpi, MpiConfig};
use bluefield_offload::net::{ClusterBuilder, ClusterSpec, Inbox};

/// Engines under test.
#[derive(Clone, Copy, Debug)]
enum Engine {
    HostMpi,
    Staging,
    Gvmi,
}

/// A shift-exchange pattern: every rank sends a distinct pattern to
/// `(rank + k) % p` for several shifts `k`, then verifies everything it
/// received. Returns total simulated microseconds.
fn run_shift_exchange(engine: Engine, nodes: usize, ppn: usize, len: u64) -> f64 {
    let spec = ClusterSpec::new(nodes, ppn);
    let builder = ClusterBuilder::new(spec, 77);
    let body = move |rank: usize, ctx: simnet::ProcessCtx, cluster: rdma::ClusterCtx| {
        let inbox = Inbox::new();
        let fab = cluster.fabric().clone();
        let ep = cluster.host_ep(rank);
        let p = cluster.world_size();
        // Valid non-self shifts for this world size.
        let shifts: Vec<usize> = (1..=3).filter(|k| k % p != 0).collect();
        let sbufs: Vec<_> = shifts.iter().map(|_| fab.alloc(ep, len)).collect();
        let rbufs: Vec<_> = shifts.iter().map(|_| fab.alloc(ep, len)).collect();
        for (i, &k) in shifts.iter().enumerate() {
            let dst = (rank + k % p) % p;
            fab.fill_pattern(ep, sbufs[i], len, (rank * 100 + dst) as u64)
                .unwrap();
        }
        match engine {
            Engine::HostMpi => {
                let mpi = Mpi::attach(rank, ctx, cluster.clone(), &inbox, MpiConfig::default());
                let mut reqs = Vec::new();
                for (i, &k) in shifts.iter().enumerate() {
                    let dst = (rank + k % p) % p;
                    let src = (rank + p - k % p) % p;
                    reqs.push(mpi.isend(sbufs[i], len, dst, k as u64));
                    reqs.push(mpi.irecv(rbufs[i], len, src, k as u64));
                }
                mpi.wait_all(&reqs);
            }
            Engine::Staging | Engine::Gvmi => {
                let cfg = match engine {
                    Engine::Staging => OffloadConfig::staging(),
                    _ => OffloadConfig::proposed(),
                };
                let off = Offload::init(rank, ctx, cluster.clone(), &inbox, cfg);
                let mut reqs = Vec::new();
                for (i, &k) in shifts.iter().enumerate() {
                    let dst = (rank + k % p) % p;
                    let src = (rank + p - k % p) % p;
                    reqs.push(off.send_offload(sbufs[i], len, dst, k as u64));
                    reqs.push(off.recv_offload(rbufs[i], len, src, k as u64));
                }
                off.wait_all(&reqs);
                off.finalize();
            }
        }
        for (i, &k) in shifts.iter().enumerate() {
            let src = (rank + p - k % p) % p;
            assert!(
                fab.verify_pattern(ep, rbufs[i], len, (src * 100 + rank) as u64)
                    .unwrap(),
                "{engine:?}: rank {rank} shift {k} payload from {src}"
            );
        }
    };
    let report = match engine {
        Engine::HostMpi => builder.run_hosts(body),
        Engine::Staging => builder.run(body, Some(offload::proxy_fn(OffloadConfig::staging()))),
        Engine::Gvmi => builder.run(body, Some(offload::proxy_fn(OffloadConfig::proposed()))),
    }
    .expect("run completes");
    report.end_time.as_us_f64()
}

#[test]
fn all_engines_deliver_identical_data_small() {
    for engine in [Engine::HostMpi, Engine::Staging, Engine::Gvmi] {
        run_shift_exchange(engine, 2, 2, 4 * 1024);
    }
}

#[test]
fn all_engines_deliver_identical_data_large() {
    for engine in [Engine::HostMpi, Engine::Staging, Engine::Gvmi] {
        run_shift_exchange(engine, 3, 2, 256 * 1024);
    }
}

#[test]
fn staging_is_slower_than_gvmi_end_to_end() {
    let staging = run_shift_exchange(Engine::Staging, 2, 1, 512 * 1024);
    let gvmi = run_shift_exchange(Engine::Gvmi, 2, 1, 512 * 1024);
    assert!(
        staging > gvmi,
        "staging end-to-end ({staging}us) must exceed GVMI ({gvmi}us)"
    );
}

#[test]
fn group_and_basic_primitives_agree() {
    // The same alltoall pattern through Basic and Group primitives must
    // produce the same bytes.
    for use_group in [false, true] {
        let spec = ClusterSpec::new(2, 2);
        ClusterBuilder::new(spec, 3)
            .run(
                move |rank, ctx, cluster| {
                    let inbox = Inbox::new();
                    let off = Offload::init(
                        rank,
                        ctx,
                        cluster.clone(),
                        &inbox,
                        OffloadConfig::proposed(),
                    );
                    let fab = cluster.fabric().clone();
                    let ep = cluster.host_ep(rank);
                    let p = cluster.world_size();
                    let block = 8 * 1024u64;
                    let sendbuf = fab.alloc(ep, block * p as u64);
                    let recvbuf = fab.alloc(ep, block * p as u64);
                    for d in 0..p {
                        fab.fill_pattern(
                            ep,
                            sendbuf.offset(d as u64 * block),
                            block,
                            (rank * 7 + d) as u64,
                        )
                        .unwrap();
                    }
                    if use_group {
                        let g = off.group_start();
                        for k in 1..p {
                            let dst = (rank + k) % p;
                            let src = (rank + p - k) % p;
                            off.group_send(
                                g,
                                sendbuf.offset(dst as u64 * block),
                                block,
                                dst,
                                dst as u64,
                            );
                            off.group_recv(
                                g,
                                recvbuf.offset(src as u64 * block),
                                block,
                                src,
                                rank as u64,
                            );
                        }
                        off.group_end(g);
                        off.group_call(g);
                        off.group_wait(g).expect("group offload failed");
                    } else {
                        let mut reqs = Vec::new();
                        for k in 1..p {
                            let dst = (rank + k) % p;
                            let src = (rank + p - k) % p;
                            reqs.push(off.send_offload(
                                sendbuf.offset(dst as u64 * block),
                                block,
                                dst,
                                dst as u64,
                            ));
                            reqs.push(off.recv_offload(
                                recvbuf.offset(src as u64 * block),
                                block,
                                src,
                                rank as u64,
                            ));
                        }
                        off.wait_all(&reqs);
                    }
                    for s in 0..p {
                        if s == rank {
                            continue;
                        }
                        assert!(
                            fab.verify_pattern(
                                ep,
                                recvbuf.offset(s as u64 * block),
                                block,
                                (s * 7 + rank) as u64
                            )
                            .unwrap(),
                            "group={use_group} rank {rank} from {s}"
                        );
                    }
                    off.finalize();
                },
                Some(offload::proxy_fn(OffloadConfig::proposed())),
            )
            .unwrap();
    }
}
