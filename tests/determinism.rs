//! The whole stack must be bit-for-bit reproducible: identical seeds give
//! identical virtual timings, event counts and statistics.

use bluefield_offload::apps::{
    drive_group_stencil, ialltoall_overlap, stencil3d, CheckRun, Runtime,
};
use bluefield_offload::dpu::{Metrics, OffloadConfig};
use bluefield_offload::net::{ClusterBuilder, ClusterSpec, Inbox};

fn trace_render(seed: u64, threads: usize) -> (String, u64, f64) {
    let spec = ClusterSpec::new(2, 2);
    let report = ClusterBuilder::new(spec, seed)
        .with_threads(threads)
        .with_trace()
        .run(
            |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = bluefield_offload::dpu::Offload::init(
                    rank,
                    ctx.clone(),
                    cluster.clone(),
                    &inbox,
                    OffloadConfig::proposed(),
                );
                let fab = cluster.fabric().clone();
                let ep = cluster.host_ep(rank);
                let buf = fab.alloc(ep, 64 * 1024);
                let p = cluster.world_size();
                ctx.trace(format!("start.{rank}"));
                let s = off.send_offload(buf, 64 * 1024, (rank + 1) % p, 1);
                let r = off.recv_offload(buf, 64 * 1024, (rank + p - 1) % p, 1);
                off.wait(s);
                off.wait(r);
                ctx.trace(format!("done.{rank}"));
                off.finalize();
            },
            Some(offload::proxy_fn(OffloadConfig::proposed())),
        )
        .unwrap();
    (
        report.trace.unwrap().render(),
        report.events,
        report.end_time.as_us_f64(),
    )
}

#[test]
fn identical_seeds_are_bit_identical() {
    // Reproducibility per engine, and across engines: the classic loop
    // (threads = 1) and the sharded runtime (threads = 4) must render
    // the same trace, event count and end time for the same seed.
    let (t1, e1, end1) = trace_render(5, 1);
    let (t2, e2, end2) = trace_render(5, 1);
    assert_eq!(t1, t2, "trace must be identical");
    assert_eq!(e1, e2);
    assert_eq!(end1, end2);
    let (t4, e4, end4) = trace_render(5, 4);
    assert_eq!(t1, t4, "sharded trace must match the classic engine");
    assert_eq!(e1, e4);
    assert_eq!(end1, end4);
}

#[test]
fn benchmark_results_are_reproducible() {
    let a = ialltoall_overlap(2, 2, 16 * 1024, 1, 1, Runtime::proposed(), 9);
    let b = ialltoall_overlap(2, 2, 16 * 1024, 1, 1, Runtime::proposed(), 9);
    assert_eq!(a.pure_us, b.pure_us);
    assert_eq!(a.overall_us, b.overall_us);
    let s1 = stencil3d(2, 2, 64, 1, 1, Runtime::Intel, 4);
    let s2 = stencil3d(2, 2, 64, 1, 1, Runtime::Intel, 4);
    assert_eq!(s1.overall_us, s2.overall_us);
    assert_eq!(s1.pure_us, s2.pure_us);
}

#[test]
fn stats_are_reproducible() {
    let run = |seed, threads| {
        let spec = ClusterSpec::new(2, 1);
        ClusterBuilder::new(spec, seed)
            .with_threads(threads)
            .run(
                |rank, ctx, cluster| {
                    let inbox = Inbox::new();
                    let off = bluefield_offload::dpu::Offload::init(
                        rank,
                        ctx,
                        cluster.clone(),
                        &inbox,
                        OffloadConfig::proposed(),
                    );
                    let fab = cluster.fabric().clone();
                    let ep = cluster.host_ep(rank);
                    let buf = fab.alloc(ep, 4096);
                    for i in 0..4u64 {
                        if rank == 0 {
                            off.wait(off.send_offload(buf, 4096, 1, i));
                        } else {
                            off.wait(off.recv_offload(buf, 4096, 0, i));
                        }
                    }
                    off.finalize();
                },
                Some(offload::proxy_fn(OffloadConfig::proposed())),
            )
            .unwrap()
    };
    let collect = |r: &simnet::Report| {
        r.stats
            .counters()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    // Run-to-run reproducibility holds on both engines.
    for threads in [1, 4] {
        let r1 = run(11, threads);
        let r2 = run(11, threads);
        assert_eq!(collect(&r1), collect(&r2), "threads={threads}");
        assert_eq!(r1.end_time, r2.end_time, "threads={threads}");
    }
    // Across engines, every counter except the sharded runtime's own
    // `simnet.sharded.*` bookkeeping matches (the classic loop has no
    // shards to report on — the one legitimate observable difference).
    let engine_free = |r: &simnet::Report| {
        r.stats
            .counters()
            .filter(|(k, _)| !k.starts_with("simnet.sharded."))
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let classic = run(11, 1);
    let sharded = run(11, 4);
    assert_eq!(engine_free(&classic), engine_free(&sharded));
    assert_eq!(classic.end_time, sharded.end_time);
}

#[test]
fn metrics_reports_are_reproducible() {
    // Two same-seed runs must fold to byte-identical metrics JSON — the
    // property that makes bench_results/ baselines diffable.
    let run = |seed, threads| {
        let mut cr = CheckRun::baseline(seed);
        cr.threads = Some(threads);
        let m = Metrics::new();
        cr.sink = Some(m.sink());
        drive_group_stencil(&cr, 8192, 2).expect("clean run");
        m.report().to_json("determinism")
    };
    let a = run(17, 1);
    let b = run(17, 1);
    assert_eq!(a, b, "metrics JSON must be deterministic");
    obs::validate_metrics(&a).expect("schema-valid");
    // The sharded runtime folds to the same bytes.
    assert_eq!(a, run(17, 4), "metrics JSON must be engine-invariant");
    // A different seed still validates (and may legitimately differ).
    obs::validate_metrics(&run(18, 1)).expect("schema-valid");
}
