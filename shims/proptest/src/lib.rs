//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest it uses: the `proptest!` test macro,
//! composable [`Strategy`] values (ranges, tuples, vectors, `any`,
//! `prop_map`/`prop_filter`, `prop_oneof!`), and a deterministic
//! per-test RNG. Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the exact generated input
//!   (every `Value` is `Debug`) but is not minimized.
//! * **Deterministic.** The RNG is seeded from the test's module path and
//!   name, so a failure always reproduces; there is no persistence file.
//! * `prop_assert!`/`prop_assert_eq!` are plain assertions (they panic
//!   rather than return `Err`), which the runner catches per case.

#![warn(missing_docs)]
// Vendored shim: mirror the real crate's signatures rather than invent
// type aliases the real proptest does not have.
#![allow(clippy::type_complexity)]

/// Strategy combinators: how test inputs are generated.
pub mod strategy {
    use std::fmt;
    use std::marker::PhantomData;

    use crate::test_runner::TestRng;

    /// A generator of test values. The simplified contract: given the
    /// deterministic [`TestRng`], produce one value.
    pub trait Strategy {
        /// The type of generated values.
        type Value: fmt::Debug;

        /// Generate one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, O>
        where
            Self: Sized + 'static,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O + 'static,
        {
            Map {
                inner: self,
                f: Box::new(f),
            }
        }

        /// Keep only values for which `pred` holds; gives up (panicking
        /// with `reason`) after too many consecutive rejections.
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred: Box::new(pred),
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S: Strategy, O> {
        inner: S,
        f: Box<dyn Fn(S::Value) -> O>,
    }

    impl<S: Strategy, O: fmt::Debug> Strategy for Map<S, O> {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S: Strategy> {
        inner: S,
        reason: String,
        pred: Box<dyn Fn(&S::Value) -> bool>,
    }

    impl<S: Strategy> Strategy for Filter<S> {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..4096 {
                let v = self.inner.gen_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted 4096 attempts: {}", self.reason);
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn gen_value(&self, rng: &mut TestRng) -> V {
            self.0.gen_value(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Choose uniformly among `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V: fmt::Debug> Strategy for Union<V> {
        type Value = V;

        fn gen_value(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].gen_value(rng)
        }
    }

    /// Always produce a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = self.start as i128;
                    let span = (self.end as i128 - lo) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.gen_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn gen_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.gen_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.gen_value(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// Length specification for collection strategies; built from `a..b`,
    /// `a..=b` or an exact `usize`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub(crate) start: usize,
        pub(crate) end_excl: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end_excl: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end_excl: r.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end_excl: n.saturating_add(1),
            }
        }
    }

    /// Generates vectors with lengths drawn from `size` and elements from
    /// `element` (see [`crate::prop::collection::vec`]).
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end_excl, "empty size range");
            let span = (self.size.end_excl - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct AnyStrategy<T>(pub(crate) PhantomData<fn() -> T>);

    impl<T: crate::arbitrary::ArbitraryValue + fmt::Debug> Strategy for AnyStrategy<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;

    /// Types that can be generated across their whole domain.
    pub trait ArbitraryValue {
        /// Generate one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.gen_f64()
        }
    }

    /// A strategy generating any value of `T`.
    pub fn any<T: ArbitraryValue + std::fmt::Debug>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// The `prop::` namespace (collection strategies).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// Vectors of `element` values with a length in `size`
        /// (`a..b`, `a..=b` or an exact `usize`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Test-runner plumbing: configuration, RNG and failure reporting.
pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Attempt bound used by rejection-based combinators (kept for
        /// API-shape compatibility; `prop_filter` uses a fixed bound).
        pub max_local_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_local_rejects: 4096,
            }
        }
    }

    /// Deterministic split-mix RNG seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test (FNV-1a of the name seeds the stream).
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; returns 0 for bound 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn gen_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Error returned from a test body that fails (or rejects) a case
    /// explicitly instead of panicking. Bodies may `return Ok(())` early;
    /// the runner appends the final `Ok(())` itself.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// An explicit case failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Render a caught panic payload.
    pub fn panic_str(err: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = err.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = err.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// Report a failing case with its exact input, then panic.
    pub fn report_failure(
        test: &str,
        case: u32,
        input: &str,
        err: Box<dyn std::any::Any + Send>,
    ) -> ! {
        panic!(
            "proptest {test}: case {case} failed\n  input: {input}\n  cause: {}",
            panic_str(&*err)
        );
    }
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of
/// `fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let vals = ($($crate::strategy::Strategy::gen_value(&($strat), &mut rng),)+);
                let input = format!("{vals:?}");
                // The body runs in a closure returning `Result`, so tests
                // may `return Ok(())` early, as with real proptest.
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        let ($($pat,)+) = vals;
                        $body
                        #[allow(unreachable_code)]
                        return ::std::result::Result::Ok(());
                    },
                ));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(err)) => {
                        $crate::test_runner::report_failure(
                            stringify!($name),
                            case,
                            &input,
                            Box::new(err.to_string()),
                        );
                    }
                    Err(err) => {
                        $crate::test_runner::report_failure(
                            stringify!($name),
                            case,
                            &input,
                            err,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
}

/// Choose uniformly among the argument strategies (all must produce the
/// same `Value` type). Weighted arms are not supported by this shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property assertion: panics (caught per case by the runner).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion: panics (caught per case by the runner).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion: panics (caught per case by the runner).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The usual glob-import surface: strategies, config, macros.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::gen_value(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::gen_value(&(0.25f64..0.5), &mut rng);
            assert!((0.25..0.5).contains(&f));
            let i = Strategy::gen_value(&(-5i32..7), &mut rng);
            assert!((-5..7).contains(&i));
        }
    }

    #[test]
    fn vec_and_tuple_and_map_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat =
            prop::collection::vec((0usize..4, 1u64..100).prop_map(|(a, b)| a as u64 + b), 1..9);
        for _ in 0..200 {
            let v = strat.gen_value(&mut rng);
            assert!(!v.is_empty() && v.len() < 9);
            assert!(v.iter().all(|&x| (1..103).contains(&x)));
        }
    }

    #[test]
    fn oneof_and_filter() {
        let mut rng = TestRng::for_test("oneof");
        let strat = prop_oneof![0u64..10, 100u64..110].prop_filter("even only", |v| v % 2 == 0);
        for _ in 0..200 {
            let v = Strategy::gen_value(&strat, &mut rng);
            assert!(v % 2 == 0 && (v < 10 || (100..110).contains(&v)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro grammar: docs, mut patterns, trailing commas.
        #[test]
        fn macro_binds_patterns(mut xs in prop::collection::vec(any::<u8>(), 1..10), y in 0u8..4,) {
            xs.push(y);
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(*xs.last().expect("non-empty"), y);
        }

        /// Bodies may `return Ok(())` early, and collection sizes may be
        /// inclusive ranges.
        #[test]
        fn macro_allows_early_ok_return(xs in prop::collection::vec(any::<u16>(), 1..=8)) {
            prop_assert!(!xs.is_empty() && xs.len() <= 8);
            if xs.len() < 100 {
                return Ok(());
            }
            prop_assert!(false);
        }
    }
}
