//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of criterion its benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`bench_function`/`finish`,
//! `Bencher::iter`/`iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short warm-up plus the
//! configured number of timed samples and prints the mean wall-clock time
//! per iteration — enough to compare relative costs; it does not do
//! criterion's statistical analysis or HTML reports.
//!
//! Wall-clock timing (`std::time::Instant`) is intentional here: benches
//! measure the *host* cost of running the simulator, not simulated time,
//! and this crate is outside the simnet-driven lint scope.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; only the variants the workspace
/// uses are provided, and they all behave the same (fresh setup per
/// iteration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            samples: self.default_samples,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self.default_samples;
        run_bench(name, samples, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.samples, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_bench(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    // One warm-up pass, then the timed samples.
    f(&mut b);
    b.iters = 0;
    b.elapsed = Duration::ZERO;
    for _ in 0..samples {
        f(&mut b);
    }
    let mean_ns = if b.iters == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    };
    println!("  {name}: {mean_ns:.0} ns/iter ({} iters)", b.iters);
}

/// Passed to each benchmark closure; accumulates timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` once per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let t0 = Instant::now();
        let out = routine();
        self.elapsed += t0.elapsed();
        self.iters += 1;
        drop(out);
    }

    /// Time `routine` on a fresh `setup()` value, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        let out = routine(input);
        self.elapsed += t0.elapsed();
        self.iters += 1;
        drop(out);
    }
}

/// Bundle benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut count = 0u64;
        g.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                count += 1;
            });
        });
        g.finish();
        // One warm-up + three samples.
        assert_eq!(count, 4);
    }

    #[test]
    fn iter_batched_runs_setup_each_time() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        let mut g = c.benchmark_group("t2");
        g.sample_size(2).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::SmallInput,
            );
        });
        g.finish();
        assert_eq!(setups, 3);
    }
}
