//! Offline stand-in for the `parking_lot` crate, implemented over
//! `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `parking_lot` it actually uses: a [`Mutex`]
//! whose `lock()` returns the guard directly (no poisoning), and a
//! [`Condvar`] whose `wait` borrows the guard mutably instead of consuming
//! it. Semantics match `parking_lot` for that subset; performance
//! characteristics are those of `std::sync`.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, `lock()`
/// returns the guard directly and a panic while holding the lock does not
/// poison it.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(Some(g)),
            Err(poison) => MutexGuard(Some(poison.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(poison)) => {
                Some(MutexGuard(Some(poison.into_inner())))
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard of a [`Mutex`]. The `Option` inside is only ever `None`
/// transiently while a [`Condvar::wait`] hands the underlying std guard to
/// the OS primitive.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A condition variable whose `wait` takes the guard by `&mut`, matching
/// `parking_lot`'s API.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard not already waiting");
        let inner = match self.0.wait(inner) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        guard.0 = Some(inner);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wait_with_borrowed_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            *started = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut started = m.lock();
        while !*started {
            cv.wait(&mut started);
        }
        drop(started);
        t.join().expect("helper thread");
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
