//! # bluefield-offload — reproduction of the IPDPS'23 BlueField
//! communication-offload framework
//!
//! This umbrella crate re-exports the whole stack so examples, integration
//! tests and downstream users have a single dependency:
//!
//! * [`sim`] — deterministic discrete-event engine (virtual time,
//!   coroutine-style processes, FIFO resources).
//! * [`net`] — verbs-like RDMA layer: simulated memory, IB/GVMI/cross-GVMI
//!   registration, RDMA read/write, NIC + PCIe performance models, cluster
//!   construction.
//! * [`mpi`] — a miniature host-progress MPI (p2p, collectives, NBC
//!   schedules).
//! * [`dpu`] — **the paper's contribution**: Basic & Group offload
//!   primitives, DPU proxy processes, registration and group-metadata
//!   caches, GVMI and staging data paths.
//! * [`compare`] — the baselines: IntelMPI (host MPI) and BluesMPI
//!   (staging offload of specific collectives).
//! * [`apps`] — the evaluation workloads: ping-pong, 3-D stencil,
//!   Ialltoall overlap, scatter-destination, P3DFFT and HPL skeletons.
//!
//! ## Quickstart
//!
//! Run the ping-pong of paper Listing 3:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! and see `examples/ring_broadcast.rs` for the Group-primitive ring of
//! paper Listing 5, including the Fig. 1 event timeline.

#![warn(missing_docs)]

/// The discrete-event simulation engine (`simnet` crate).
pub mod sim {
    pub use simnet::*;
}

/// The RDMA/verbs layer (`rdma` crate).
pub mod net {
    pub use rdma::*;
}

/// The miniature MPI (`minimpi` crate).
pub mod mpi {
    pub use minimpi::*;
}

/// The offload framework — the paper's contribution (`offload` crate).
pub mod dpu {
    pub use offload::*;
}

/// Baselines (`baselines` crate).
pub mod compare {
    pub use baselines::*;
}

/// Evaluation workloads (`workloads` crate).
pub mod apps {
    pub use workloads::*;
}
