#!/usr/bin/env bash
# The full gate: formatting, clippy deny-wall, the repo-specific lint
# wall, the workspace analyzer (drift + parallel-readiness rules), build
# + tests, then the benchmark artifact gates: schema validation, the
# bench-diff regression comparison of a fresh deterministic --quick run
# against the committed baselines, and the continuous self-profiling
# gates (overhead bound, snapshot determinism, profile/v1 schema).
# Run from the repo root; fails fast.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo xtask lint"
cargo xtask lint

echo "== cargo xtask analyze (drift + parallel-readiness gates)"
# Writes the bluefield-offload/analyzer/v1 report as a side effect;
# archived next to the bench artifacts at the end of the run.
cargo xtask analyze

echo "== bench_results hygiene (committed baselines only)"
# The committed baseline tree must hold nothing but *.metrics.json
# documents: a stray file (scratch output, notes, stale logs) would
# masquerade as a baseline and silently drift out of date.
stray=0
for f in bench_results/*; do
    case "$f" in
        *.metrics.json) ;;
        *)
            echo "unexpected file in bench_results/: $f (only *.metrics.json belongs here)"
            stray=1
            ;;
    esac
done
[ "$stray" -eq 0 ] || exit 1

echo "== cargo build --release"
cargo build --release

echo "== cargo test (classic engine, SIMNET_THREADS=1)"
if ! SIMNET_THREADS=1 cargo test -q --workspace; then
    # The checker explorer drops flight-recorder dumps next to failing
    # schedules; surface them so the trace travels with the CI log.
    if ls target/failure-dumps/*.flight.txt >/dev/null 2>&1; then
        echo "flight-recorder dumps from failing runs:"
        ls -l target/failure-dumps/
    fi
    exit 1
fi

echo "== cargo test (sharded engine, SIMNET_THREADS=4)"
# The same tier-1 suite with every cluster routed through the sharded
# conservative-lookahead runtime: worker threads are a pure speed knob,
# so both passes must be green with identical verdicts (the equivalence
# suite in tests/engine_equivalence.rs additionally byte-compares the
# artifacts the two engines produce).
if ! SIMNET_THREADS=4 cargo test -q --workspace; then
    if ls target/failure-dumps/*.flight.txt >/dev/null 2>&1; then
        echo "flight-recorder dumps from failing runs:"
        ls -l target/failure-dumps/
    fi
    exit 1
fi

echo "== fault soak (ctrl + data-plane + tenant-isolation + breaker matrix)"
# Bounded fixed-seed soak across ten suites, all through the
# conformance checker with payload verification:
#   * ctrl matrix    — drop/dup/delay/crash/xreg plans x seeds x 1/2/4
#                      proxies on the verified stencil and alltoall;
#   * payload        — bit-flip x torn-write x silent-drop corruption:
#                      must heal byte-correct via bounded retransmission;
#   * starved        — post burst against tiny admission/staging/journal
#                      caps: credits + QueueFull pacing, depths bounded;
#   * noisy-neighbor — a flooding tenant vs a well-behaved one at 2 and
#                      4 proxies, clean and under a drop/dup/crash plan:
#                      the victim's p99 group-window latency must stay
#                      within the committed bound factor of its solo p99
#                      (per-tenant lifecycle histograms);
#   * quota-retry    — hard-quota sheds under a lossy ctrl plane: typed
#                      QuotaExceeded, retry succeeds, never a stall;
#   * doomed-group   — every GroupPacket dropped: Group_Wait must fail
#                      typed, never stall;
#   * armed-health   — the whole ctrl matrix rerun with the fabric
#                      health engine armed: breakers/budgets must stay
#                      lossless (invariants 16-18 in the checker);
#   * breaker-recovery — sustained cross-GVMI registration failures:
#                      trip, fast-path through cooldown, probe, close,
#                      zero request failures end to end;
#   * brownout       — total payload loss: the data retry budget sheds
#                      before retransmission exhaustion and surfaces
#                      exactly one typed RetryBudgetExhausted per end;
#   * flapping-link  — SOAK_LONG only: xreg failures + ctrl drops + a
#                      proxy crash mid-run, breakers armed, lossless.
# SOAK_LONG=1 widens the matrix (8 seeds, deeper corruption stacks, the
# delay-heavy noisy-neighbor plan) for nightly-style runs; failures
# leave replayable flight-recorder dumps in
# target/failure-dumps/. The soak runs on the sharded engine
# (SIMNET_THREADS=4): recovery under faults must not depend on the
# engine, and the =1 behaviour is pinned by the equivalence suite.
if ! SOAK_LONG="${SOAK_LONG:-}" SIMNET_THREADS=4 \
    cargo run --release --quiet -p checker --bin fault_soak; then
    if ls target/failure-dumps/*.flight.txt >/dev/null 2>&1; then
        echo "flight-recorder dumps from failing soak scenarios:"
        ls -l target/failure-dumps/
    fi
    exit 1
fi

echo "== bench artifacts (fresh --quick run into target/bench-scratch)"
rm -rf target/bench-scratch
for bin in engine_speed ext_allgather ext_bluefield3 ext_proxy_count \
    ext_scale_alltoall ext_scale_stencil \
    fig02_rdma_latency fig03_rdma_bandwidth fig04_pingpong_staging \
    fig05_registration fig11_stencil_time fig12_stencil_overlap \
    fig13_ialltoall_time fig14_ialltoall_overlap fig15_scatter_dest \
    fig16_p3dfft fig17_hpl; do
    BENCH_OUT_DIR=target/bench-scratch \
        cargo run --release --quiet -p bench-harness --bin "$bin" -- --quick \
        >/dev/null
done

echo "== sharded-engine byte equivalence (threads 1 vs 4, --quick)"
# The acceptance property at CI scale: the scale benches rerun at 1 and
# 4 worker threads with wall-clock keys suppressed (BENCH_NO_WALL=1)
# must write byte-identical metrics documents. SCALE_LONG=1 repeats the
# check at the full 1024-rank shape (minutes on one CPU).
rm -rf target/equiv-t1 target/equiv-t4
equiv_scales=(--quick)
if [ -n "${SCALE_LONG:-}" ]; then equiv_scales+=(""); fi
for scale in "${equiv_scales[@]}"; do
    for bin in ext_scale_alltoall ext_scale_stencil; do
        for t in 1 4; do
            # shellcheck disable=SC2086  # $scale is intentionally word-split
            BENCH_OUT_DIR="target/equiv-t$t" BENCH_NO_WALL=1 \
                cargo run --release --quiet -p bench-harness --bin "$bin" -- \
                --threads "$t" $scale >/dev/null
        done
    done
done
for doc in target/equiv-t1/*.metrics.json; do
    if ! cmp "$doc" "target/equiv-t4/$(basename "$doc")"; then
        echo "sharded engine diverged from the classic engine: $doc"
        exit 1
    fi
done
echo "scale artifacts byte-identical at 1 and 4 worker threads"

echo "== continuous self-profiling (BENCH_PROFILE=1, overhead gate)"
# The engine self-benchmark reruns its spec with the span profiler, the
# per-shard engine attribution and the telemetry bus armed, interleaving
# unprofiled and profiled repetitions; the binary exits nonzero if the
# profiled best-of-N exceeds the unprofiled one by more than the gate.
rm -rf target/profile target/profile-run
BENCH_OUT_DIR=target/profile-run BENCH_PROFILE=1 BENCH_PROFILE_GATE_PCT=5 \
    cargo run --release --quiet -p bench-harness --bin engine_speed -- --quick \
    >/dev/null
echo "profiling overhead within the 5% gate"

echo "== profile determinism (snapshots byte-identical, threads 1 vs 4)"
# Like the metrics equivalence above: with wall-clock keys suppressed a
# profile/v1 document is a pure function of the deterministic event
# stream and the telemetry interval, so the 1- and 4-worker documents
# must be byte-identical (the engine section is wall-gated precisely
# because shard topology follows the thread count).
rm -rf target/profile-equiv-t1 target/profile-equiv-t4
for t in 1 4; do
    BENCH_OUT_DIR=target/profile-run BENCH_PROFILE_DIR="target/profile-equiv-t$t" \
        BENCH_PROFILE=1 BENCH_NO_WALL=1 SIMNET_THREADS="$t" \
        cargo run --release --quiet -p bench-harness --bin engine_speed -- --quick \
        >/dev/null
done
for doc in target/profile-equiv-t1/*.profile.json; do
    if ! cmp "$doc" "target/profile-equiv-t4/$(basename "$doc")"; then
        echo "profile document depends on the worker thread count: $doc"
        exit 1
    fi
done
echo "profile artifacts byte-identical at 1 and 4 worker threads"

echo "== profile schema (bluefield-offload/profile/v1) + self-time table"
cargo xtask validate-metrics target/profile/*.profile.json
cargo xtask profile --top 8

echo "== metrics schema (bluefield-offload/metrics/v1)"
cargo xtask validate-metrics target/bench-scratch/*.metrics.json

echo "== bench-diff against committed baselines"
cargo xtask bench-diff bench_results target/bench-scratch
# Machine-readable copy of the same verdict for downstream tooling.
cargo xtask bench-diff bench_results target/bench-scratch --json \
    > target/bench-scratch/bench-diff.json
echo "bench-diff report: target/bench-scratch/bench-diff.json"

# Archive the analyzer verdict and the self-profiling reports next to
# the bench artifacts so one directory carries every machine-readable
# CI report.
cp target/analyze/report.json target/bench-scratch/analyze-report.json
cp target/profile/*.profile.json target/bench-scratch/
echo "analyzer report: target/bench-scratch/analyze-report.json"
echo "self-profiling reports: target/bench-scratch/*.profile.json"
echo "engine self-benchmark: target/bench-scratch/engine_speed.metrics.json"

echo "ci.sh: all gates passed"
