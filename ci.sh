#!/usr/bin/env bash
# The full gate: formatting, clippy deny-wall, the repo-specific lint
# wall, then build + tests. Run from the repo root; fails fast.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo xtask lint"
cargo xtask lint

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q

echo "== metrics artifact (schema bluefield-offload/metrics/v1)"
cargo run --release --quiet -p bench-harness --bin fig04_pingpong_staging -- --quick > /dev/null
cargo xtask validate-metrics bench_results/fig04_pingpong_staging.metrics.json

echo "ci.sh: all gates passed"
