#!/usr/bin/env bash
# The full gate: formatting, clippy deny-wall, the repo-specific lint
# wall, the workspace analyzer (drift + parallel-readiness rules), build
# + tests, then the benchmark artifact gates: schema validation and the
# bench-diff regression comparison of a fresh deterministic --quick run
# against the committed baselines.
# Run from the repo root; fails fast.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo xtask lint"
cargo xtask lint

echo "== cargo xtask analyze (drift + parallel-readiness gates)"
# Writes the bluefield-offload/analyzer/v1 report as a side effect;
# archived next to the bench artifacts at the end of the run.
cargo xtask analyze

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
if ! cargo test -q --workspace; then
    # The checker explorer drops flight-recorder dumps next to failing
    # schedules; surface them so the trace travels with the CI log.
    if ls target/failure-dumps/*.flight.txt >/dev/null 2>&1; then
        echo "flight-recorder dumps from failing runs:"
        ls -l target/failure-dumps/
    fi
    exit 1
fi

echo "== fault soak (ctrl + data-plane fault matrix)"
# Bounded fixed-seed soak across four suites, all through the
# conformance checker with payload verification:
#   * ctrl matrix   — drop/dup/delay/crash/xreg plans x seeds x 1/2/4
#                     proxies on the verified stencil and alltoall;
#   * payload       — bit-flip x torn-write x silent-drop corruption:
#                     must heal byte-correct via bounded retransmission;
#   * starved       — post burst against tiny admission/staging/journal
#                     caps: credits + QueueFull pacing, depths bounded;
#   * doomed-group  — every GroupPacket dropped: Group_Wait must fail
#                     typed, never stall.
# SOAK_LONG=1 widens the matrix (8 seeds, deeper corruption stacks) for
# nightly-style runs; failures leave replayable flight-recorder dumps
# in target/failure-dumps/.
if ! SOAK_LONG="${SOAK_LONG:-}" cargo run --release --quiet -p checker --bin fault_soak; then
    if ls target/failure-dumps/*.flight.txt >/dev/null 2>&1; then
        echo "flight-recorder dumps from failing soak scenarios:"
        ls -l target/failure-dumps/
    fi
    exit 1
fi

echo "== bench artifacts (fresh --quick run into target/bench-scratch)"
rm -rf target/bench-scratch
for bin in ext_allgather ext_bluefield3 ext_proxy_count \
    fig02_rdma_latency fig03_rdma_bandwidth fig04_pingpong_staging \
    fig05_registration fig11_stencil_time fig12_stencil_overlap \
    fig13_ialltoall_time fig14_ialltoall_overlap fig15_scatter_dest \
    fig16_p3dfft fig17_hpl; do
    BENCH_OUT_DIR=target/bench-scratch \
        cargo run --release --quiet -p bench-harness --bin "$bin" -- --quick \
        >/dev/null
done

echo "== metrics schema (bluefield-offload/metrics/v1)"
cargo xtask validate-metrics target/bench-scratch/*.metrics.json

echo "== bench-diff against committed baselines"
cargo xtask bench-diff bench_results target/bench-scratch
# Machine-readable copy of the same verdict for downstream tooling.
cargo xtask bench-diff bench_results target/bench-scratch --json \
    > target/bench-scratch/bench-diff.json
echo "bench-diff report: target/bench-scratch/bench-diff.json"

# Archive the analyzer verdict next to the bench artifacts so one
# directory carries every machine-readable CI report.
cp target/analyze/report.json target/bench-scratch/analyze-report.json
echo "analyzer report: target/bench-scratch/analyze-report.json"

echo "ci.sh: all gates passed"
